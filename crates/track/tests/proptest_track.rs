//! Property tests of the sequential-inference stack: the trajectory
//! sweep is bit-identical at every thread count, forward-filter
//! posteriors are distributions for arbitrary positive emissions, and a
//! zero smoothing window makes the smoothed estimator coincide with the
//! filtered one.

use calloc_nn::Localizer;
use calloc_sim::{
    BuildingId, BuildingSpec, CollectionConfig, EnvLevel, MotionConfig, TrajectorySet,
    TrajectorySpec,
};
use calloc_tensor::{par, Matrix, Rng};
use calloc_track::{
    map_estimates, run_trajectory_sweep, smooth, ForwardFilter, TrackConfig, TrajectoryTable,
    TransitionModel,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that flip the process-global `par` knobs.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

fn lock_knobs() -> std::sync::MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A deterministic observation-dependent localizer: predicts the RP
/// whose index matches the strongest-AP column, folded into range. Pure
/// arithmetic over the observation bits, so sweep determinism tests
/// exercise a data-dependent path without training a model.
struct StrongestAp {
    num_rps: usize,
}

impl Localizer for StrongestAp {
    fn name(&self) -> &str {
        "strongest-ap"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        x.argmax_rows()
            .into_iter()
            .map(|ap| ap % self.num_rps)
            .collect()
    }
}

/// A localizer that always predicts RP 0.
struct Origin;

impl Localizer for Origin {
    fn name(&self) -> &str {
        "origin"
    }

    fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        vec![0; x.rows()]
    }
}

fn tiny_set() -> TrajectorySet {
    TrajectorySpec::from_base(
        vec![
            BuildingSpec {
                path_length_m: 9,
                num_aps: 7,
                ..BuildingId::B1.spec()
            },
            BuildingSpec {
                path_length_m: 11,
                num_aps: 6,
                ..BuildingId::B4.spec()
            },
        ],
        5,
        MotionConfig::paper(),
        CollectionConfig::small(),
        vec![5, 9],
        vec![3],
    )
    .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(2.0)])
    .generate()
}

fn sweep_tiny(set: &TrajectorySet) -> TrajectoryTable {
    let strongest: Vec<StrongestAp> = set
        .plan()
        .buildings()
        .iter()
        .map(|b| StrongestAp {
            num_rps: b.num_rps(),
        })
        .collect();
    let origin = Origin;
    let members: Vec<Vec<(&str, &dyn Localizer)>> = strongest
        .iter()
        .map(|s| {
            vec![
                ("StrongestAp", s as &dyn Localizer),
                ("Origin", &origin as &dyn Localizer),
            ]
        })
        .collect();
    run_trajectory_sweep(set, &members, &TrackConfig::paper())
}

/// The sweep's fan-out contract end to end: the same trajectory table at
/// 1, 2, 3 and 8 worker threads is identical down to the error bits and
/// the rendered CSV bytes, with the work floor dropped so every fan-out
/// engages at test sizes.
#[test]
fn trajectory_sweep_is_bit_identical_across_thread_counts() {
    let _guard = lock_knobs();
    let set = tiny_set();
    let _floor = par::MinWorkGuard::new(1);
    let serial = {
        let _threads = par::ThreadGuard::new(1);
        sweep_tiny(&set)
    };
    assert_eq!(serial.len(), set.len() * 2 * 3);

    let _threads = par::ThreadGuard::new(1);
    for threads in [2usize, 3, 8] {
        par::set_threads(threads);
        let parallel = sweep_tiny(&set);
        assert_eq!(serial.len(), parallel.len(), "{threads} threads");
        for (i, (a, b)) in serial.rows().iter().zip(parallel.rows()).enumerate() {
            assert_eq!(
                a.mean_error_m.to_bits(),
                b.mean_error_m.to_bits(),
                "row {i} mean error at {threads} threads"
            );
            assert_eq!(
                a.final_error_m.to_bits(),
                b.final_error_m.to_bits(),
                "row {i} final error at {threads} threads"
            );
            assert_eq!(a, b, "row {i} at {threads} threads");
        }
        assert_eq!(serial.to_csv(), parallel.to_csv(), "{threads} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Forward-filter posteriors are proper distributions for arbitrary
    /// strictly positive emission matrices.
    #[test]
    fn filter_posteriors_are_distributions(
        states in 1usize..12,
        ticks in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let emissions = Matrix::from_fn(ticks, states, |_, _| rng.uniform(1e-4, 1.0));
        let transition = TransitionModel::from_motion(states, &MotionConfig::paper());
        let post = ForwardFilter::new(&transition).posteriors(&emissions);
        prop_assert_eq!(post.shape(), (ticks, states));
        for t in 0..ticks {
            let sum: f64 = (0..states).map(|j| post.get(t, j)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "tick {} sums to {}", t, sum);
            for j in 0..states {
                prop_assert!(post.get(t, j) >= 0.0);
            }
        }
    }

    /// A zero-width smoothing window leaves the posteriors untouched, so
    /// smoothed and filtered MAP paths coincide exactly.
    #[test]
    fn zero_window_smoothing_matches_filtering(
        states in 2usize..10,
        ticks in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let emissions = Matrix::from_fn(ticks, states, |_, _| rng.uniform(1e-4, 1.0));
        let transition = TransitionModel::from_motion(states, &MotionConfig::paper());
        let post = ForwardFilter::new(&transition).posteriors(&emissions);
        let smoothed = smooth(&post, 0);
        prop_assert_eq!(map_estimates(&post), map_estimates(&smoothed));
        for (a, b) in post.as_slice().iter().zip(smoothed.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Transition rows stay stochastic for arbitrary motion configs.
    #[test]
    fn transition_rows_are_stochastic_for_arbitrary_motion(
        states in 1usize..16,
        speed in 0.1f64..4.0,
        dwell in 0.0f64..0.9,
        period in 0.25f64..3.0,
    ) {
        let motion = MotionConfig {
            speed_mps: speed,
            dwell_prob: dwell,
            turn_prob: 0.05,
            sample_period_s: period,
        };
        let model = TransitionModel::from_motion(states, &motion);
        for i in 0..states {
            let sum: f64 = (0..states).map(|j| model.prob(i, j)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {} sums to {}", i, sum);
            for j in 0..states {
                prop_assert!(model.prob(i, j) > 0.0, "zero mass at ({}, {})", i, j);
            }
        }
    }
}
