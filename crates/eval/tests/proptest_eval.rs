//! Property-based tests of the evaluation harness: metric shapes and
//! invariants of [`calloc_eval::evaluate`], and consistency of the
//! [`calloc_eval::ResultTable`] aggregations.

use calloc_baselines::KnnLocalizer;
use calloc_eval::{evaluate, ExecSpec, Localizer, ResultRow, ResultTable, SweepPlan, SweepSpec};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Dataset, Scenario};
use calloc_tensor::par;
use proptest::prelude::*;
use std::sync::OnceLock;

fn tiny_scenario(salt: u64, seed: u64) -> Scenario {
    let id = BuildingId::ALL[(salt % 5) as usize];
    let spec = BuildingSpec {
        path_length_m: 8 + (salt % 8) as usize,
        num_aps: 6 + (salt % 10) as usize,
        ..id.spec()
    };
    let building = Building::generate(spec, salt);
    Scenario::generate(&building, &CollectionConfig::small(), seed)
}

fn row(framework: &str, mean: f64, max: f64) -> ResultRow {
    ResultRow::clean(0, framework, "B1", "OP3", mean, max)
}

/// The pinned KNN-only sweep behind the sharding law below: one tiny
/// scenario, a 3-NN model, and the one-shot reference CSV — built once
/// per process so every proptest case partitions the *same* plan.
fn shard_fixture() -> &'static (Scenario, KnnLocalizer, String) {
    static FIXTURE: OnceLock<(Scenario, KnnLocalizer, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = tiny_scenario(3, 17);
        let knn = KnnLocalizer::fit(
            scenario.train.x.clone(),
            scenario.train.labels.clone(),
            scenario.train.num_classes(),
            3,
        );
        let (plan, datasets) = shard_plan(&scenario);
        let reference = plan.run(&[&knn], None, &datasets).to_csv();
        (scenario, knn, reference)
    })
}

/// The plan (and borrowed datasets) of [`shard_fixture`]'s sweep.
fn shard_plan(scenario: &Scenario) -> (SweepPlan, Vec<&Dataset>) {
    let names = vec!["KNN".to_string()];
    let labels: Vec<(String, String)> = scenario
        .test_per_device
        .iter()
        .map(|(d, _)| ("B1".to_string(), d.acronym.clone()))
        .collect();
    let datasets: Vec<&Dataset> = scenario.test_per_device.iter().map(|(_, t)| t).collect();
    let plan = SweepSpec::grid(vec![0.2, 0.4], vec![100.0])
        .with_seed(5)
        .plan(&names, &labels);
    (plan, datasets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A clean evaluation always produces one error per fingerprint, only
    /// non-negative finite errors, a consistent summary and an accuracy
    /// inside [0, 1].
    #[test]
    fn evaluation_shapes_and_bounds(salt in 0u64..2000, seed in 0u64..2000, k in 1usize..6) {
        let s = tiny_scenario(salt, seed);
        let knn = KnnLocalizer::fit(
            s.train.x.clone(),
            s.train.labels.clone(),
            s.train.num_classes(),
            k,
        );
        for (_, test) in &s.test_per_device {
            let ev = evaluate(&knn, test, None, None);
            prop_assert_eq!(ev.errors_m.len(), test.len());
            prop_assert!(ev.errors_m.iter().all(|e| e.is_finite() && *e >= 0.0));
            prop_assert!((0.0..=1.0).contains(&ev.accuracy));
            prop_assert!(ev.summary.min >= 0.0);
            prop_assert!(ev.summary.min <= ev.summary.mean + 1e-12);
            prop_assert!(ev.summary.mean <= ev.summary.max + 1e-12);
            let mean = ev.errors_m.iter().sum::<f64>() / ev.errors_m.len() as f64;
            prop_assert!((mean - ev.summary.mean).abs() < 1e-9,
                "summary mean {} != recomputed {}", ev.summary.mean, mean);
        }
    }

    /// Evaluating on the training fingerprints themselves: a 1-NN model
    /// memorizes the survey, so accuracy is perfect and mean error zero.
    #[test]
    fn knn_memorizes_training_set(salt in 0u64..2000, seed in 0u64..2000) {
        let s = tiny_scenario(salt, seed);
        let knn = KnnLocalizer::fit(
            s.train.x.clone(),
            s.train.labels.clone(),
            s.train.num_classes(),
            1,
        );
        let ev = evaluate(&knn, &s.train, None, None);
        prop_assert_eq!(ev.accuracy, 1.0);
        prop_assert_eq!(ev.summary.mean, 0.0);
    }

    /// `ResultTable::mean_where` over every row equals the hand-computed
    /// mean, and the trivially-false predicate yields `None`.
    #[test]
    fn result_table_mean_where_is_consistent(
        means in proptest::collection::vec(0.0..50.0f64, 1..20),
    ) {
        let mut table = ResultTable::new();
        for m in &means {
            table.push(row("CALLOC", *m, *m * 2.0));
        }
        prop_assert_eq!(table.rows().len(), means.len());
        let expect = means.iter().sum::<f64>() / means.len() as f64;
        let got = table.mean_where(|_| true).expect("non-empty table");
        prop_assert!((got - expect).abs() < 1e-9, "mean_where {got} != {expect}");
        prop_assert_eq!(table.mean_where(|r| r.framework == "nope"), None);
        let max = table.max_where(|_| true).expect("non-empty table");
        let expect_max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max) * 2.0;
        prop_assert!((max - expect_max).abs() < 1e-9);
    }

    /// `for_framework` partitions the table: the per-framework row counts
    /// sum to the total and every returned row matches the framework.
    #[test]
    fn result_table_for_framework_partitions(
        picks in proptest::collection::vec(0usize..3, 1..30),
    ) {
        let names = ["CALLOC", "KNN", "DNN"];
        let mut table = ResultTable::new();
        for (i, p) in picks.iter().enumerate() {
            table.push(row(names[*p], i as f64, i as f64));
        }
        let mut total = 0;
        for name in names {
            let rows = table.for_framework(name);
            prop_assert!(rows.iter().all(|r| r.framework == name));
            total += rows.len();
        }
        prop_assert_eq!(total, picks.len());
    }

    /// The CSV export has a header plus exactly one line per row.
    #[test]
    fn csv_has_one_line_per_row(n in 0usize..25) {
        let mut table = ResultTable::new();
        for i in 0..n {
            table.push(row("CALLOC", i as f64, i as f64));
        }
        let csv = table.to_csv();
        prop_assert_eq!(csv.trim_end().lines().count(), n + 1);
    }

    /// Sweep-plan enumeration is a pure cross-product: the cell count is
    /// the product of every axis length (plus the clean cell per pair,
    /// times the environment levels), plan indices equal positions, and
    /// member/dataset/environment indices stay in range — for arbitrary
    /// grid sizes.
    #[test]
    fn sweep_plan_is_a_complete_cross_product(
        n_members in 1usize..5,
        n_datasets in 1usize..4,
        n_eps in 1usize..4,
        n_phi in 1usize..4,
        n_env in 1usize..3,
        clean in any::<bool>(),
    ) {
        let mut spec = SweepSpec::full_grid(
            (0..n_eps).map(|i| 0.1 * (i + 1) as f64).collect(),
            (0..n_phi).map(|i| 10.0 * (i + 1) as f64).collect(),
        )
        .with_env_multipliers((0..n_env).map(|i| 1.0 + i as f64).collect());
        spec.include_clean = clean;
        let members: Vec<String> = (0..n_members).map(|i| format!("M{i}")).collect();
        let datasets: Vec<(String, String)> =
            (0..n_datasets).map(|i| ("B1".to_string(), format!("D{i}"))).collect();
        let plan = spec.plan(&members, &datasets);
        let per_block = usize::from(clean)
            + spec.attacks.len() * spec.variants.len() * spec.targetings.len() * n_eps * n_phi;
        prop_assert_eq!(plan.len(), n_members * n_datasets * n_env * per_block);
        for (i, cell) in plan.cells().iter().enumerate() {
            prop_assert_eq!(cell.plan_index, i);
            prop_assert!(cell.member < n_members);
            prop_assert!(cell.dataset < n_datasets);
            prop_assert!(cell.env < n_env);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The sharding law: **any** partition of the plan indices into
    /// contiguous shards, each run against its own store and merged,
    /// reproduces the one-shot sweep bit for bit — at `CALLOC_THREADS`
    /// 1, 2, 3 and 8 (via the process-local override).
    #[test]
    fn any_shard_partition_merges_to_the_one_shot_bytes(
        cuts in proptest::collection::vec(0usize..1000, 0..5),
    ) {
        let (scenario, knn, reference) = shard_fixture();
        let (plan, datasets) = shard_plan(scenario);
        let models: Vec<&dyn Localizer> = vec![knn];

        // Map the raw draws onto sorted, deduplicated cut points; the
        // gaps between consecutive boundaries are the shard windows
        // (empty windows are legal shards and must merge as no-ops).
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (plan.len() + 1)).collect();
        bounds.push(0);
        bounds.push(plan.len());
        bounds.sort_unstable();
        bounds.dedup();

        let _threads = par::ThreadGuard::new(1);
        for threads in [1usize, 2, 3, 8] {
            par::set_threads(threads);
            let mut merged = plan.memory_store();
            for window in bounds.windows(2) {
                let shard = plan.shard(window[0]..window[1]);
                let mut store = plan.memory_store();
                let report = shard
                    .run_with_store(&models, None, &datasets, &ExecSpec::default(), &mut store)
                    .expect("shard run");
                prop_assert!(report.is_complete(), "{}", report.summary());
                prop_assert_eq!(report.executed, window[1] - window[0]);
                merged.merge(&store).expect("disjoint shards");
            }
            prop_assert_eq!(merged.len(), plan.len());
            let csv = plan.table_from_store(&merged).to_csv();
            prop_assert_eq!(
                &csv,
                reference,
                "sharded sweep diverges from the one-shot run at {} threads with cuts {:?}",
                threads,
                bounds
            );
        }
    }
}
