//! Property-based tests of the evaluation harness: metric shapes and
//! invariants of [`calloc_eval::evaluate`], consistency of the
//! [`calloc_eval::ResultTable`] aggregations, and the corruption-safety
//! and bit-exactness laws of the persistence layers
//! ([`calloc_eval::ResultStore`], [`calloc_eval::ModelCache`]).

use calloc_baselines::KnnLocalizer;
use calloc_eval::{
    evaluate, ExecSpec, Localizer, ModelCache, ResultRow, ResultStore, ResultTable, StoreError,
    SweepPlan, SweepSpec,
};
use calloc_nn::{Dense, Layer, Sequential};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Dataset, Scenario};
use calloc_tensor::{par, Matrix};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn tiny_scenario(salt: u64, seed: u64) -> Scenario {
    let id = BuildingId::ALL[(salt % 5) as usize];
    let spec = BuildingSpec {
        path_length_m: 8 + (salt % 8) as usize,
        num_aps: 6 + (salt % 10) as usize,
        ..id.spec()
    };
    let building = Building::generate(spec, salt);
    Scenario::generate(&building, &CollectionConfig::small(), seed)
}

fn row(framework: &str, mean: f64, max: f64) -> ResultRow {
    ResultRow::clean(0, framework, "B1", "OP3", mean, max)
}

/// The pinned KNN-only sweep behind the sharding law below: one tiny
/// scenario, a 3-NN model, and the one-shot reference CSV — built once
/// per process so every proptest case partitions the *same* plan.
fn shard_fixture() -> &'static (Scenario, KnnLocalizer, String) {
    static FIXTURE: OnceLock<(Scenario, KnnLocalizer, String)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = tiny_scenario(3, 17);
        let knn = KnnLocalizer::fit(
            scenario.train.x.clone(),
            scenario.train.labels.clone(),
            scenario.train.num_classes(),
            3,
        );
        let (plan, datasets) = shard_plan(&scenario);
        let reference = plan.run(&[&knn], None, &datasets).to_csv();
        (scenario, knn, reference)
    })
}

/// The plan (and borrowed datasets) of [`shard_fixture`]'s sweep.
fn shard_plan(scenario: &Scenario) -> (SweepPlan, Vec<&Dataset>) {
    let names = vec!["KNN".to_string()];
    let labels: Vec<(String, String)> = scenario
        .test_per_device
        .iter()
        .map(|(d, _)| ("B1".to_string(), d.acronym.clone()))
        .collect();
    let datasets: Vec<&Dataset> = scenario.test_per_device.iter().map(|(_, t)| t).collect();
    let plan = SweepSpec::grid(vec![0.2, 0.4], vec![100.0])
        .with_seed(5)
        .plan(&names, &labels);
    (plan, datasets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A clean evaluation always produces one error per fingerprint, only
    /// non-negative finite errors, a consistent summary and an accuracy
    /// inside [0, 1].
    #[test]
    fn evaluation_shapes_and_bounds(salt in 0u64..2000, seed in 0u64..2000, k in 1usize..6) {
        let s = tiny_scenario(salt, seed);
        let knn = KnnLocalizer::fit(
            s.train.x.clone(),
            s.train.labels.clone(),
            s.train.num_classes(),
            k,
        );
        for (_, test) in &s.test_per_device {
            let ev = evaluate(&knn, test, None, None);
            prop_assert_eq!(ev.errors_m.len(), test.len());
            prop_assert!(ev.errors_m.iter().all(|e| e.is_finite() && *e >= 0.0));
            prop_assert!((0.0..=1.0).contains(&ev.accuracy));
            prop_assert!(ev.summary.min >= 0.0);
            prop_assert!(ev.summary.min <= ev.summary.mean + 1e-12);
            prop_assert!(ev.summary.mean <= ev.summary.max + 1e-12);
            let mean = ev.errors_m.iter().sum::<f64>() / ev.errors_m.len() as f64;
            prop_assert!((mean - ev.summary.mean).abs() < 1e-9,
                "summary mean {} != recomputed {}", ev.summary.mean, mean);
        }
    }

    /// Evaluating on the training fingerprints themselves: a 1-NN model
    /// memorizes the survey, so accuracy is perfect and mean error zero.
    #[test]
    fn knn_memorizes_training_set(salt in 0u64..2000, seed in 0u64..2000) {
        let s = tiny_scenario(salt, seed);
        let knn = KnnLocalizer::fit(
            s.train.x.clone(),
            s.train.labels.clone(),
            s.train.num_classes(),
            1,
        );
        let ev = evaluate(&knn, &s.train, None, None);
        prop_assert_eq!(ev.accuracy, 1.0);
        prop_assert_eq!(ev.summary.mean, 0.0);
    }

    /// `ResultTable::mean_where` over every row equals the hand-computed
    /// mean, and the trivially-false predicate yields `None`.
    #[test]
    fn result_table_mean_where_is_consistent(
        means in proptest::collection::vec(0.0..50.0f64, 1..20),
    ) {
        let mut table = ResultTable::new();
        for m in &means {
            table.push(row("CALLOC", *m, *m * 2.0));
        }
        prop_assert_eq!(table.rows().len(), means.len());
        let expect = means.iter().sum::<f64>() / means.len() as f64;
        let got = table.mean_where(|_| true).expect("non-empty table");
        prop_assert!((got - expect).abs() < 1e-9, "mean_where {got} != {expect}");
        prop_assert_eq!(table.mean_where(|r| r.framework == "nope"), None);
        let max = table.max_where(|_| true).expect("non-empty table");
        let expect_max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max) * 2.0;
        prop_assert!((max - expect_max).abs() < 1e-9);
    }

    /// `for_framework` partitions the table: the per-framework row counts
    /// sum to the total and every returned row matches the framework.
    #[test]
    fn result_table_for_framework_partitions(
        picks in proptest::collection::vec(0usize..3, 1..30),
    ) {
        let names = ["CALLOC", "KNN", "DNN"];
        let mut table = ResultTable::new();
        for (i, p) in picks.iter().enumerate() {
            table.push(row(names[*p], i as f64, i as f64));
        }
        let mut total = 0;
        for name in names {
            let rows = table.for_framework(name);
            prop_assert!(rows.iter().all(|r| r.framework == name));
            total += rows.len();
        }
        prop_assert_eq!(total, picks.len());
    }

    /// The CSV export has a header plus exactly one line per row.
    #[test]
    fn csv_has_one_line_per_row(n in 0usize..25) {
        let mut table = ResultTable::new();
        for i in 0..n {
            table.push(row("CALLOC", i as f64, i as f64));
        }
        let csv = table.to_csv();
        prop_assert_eq!(csv.trim_end().lines().count(), n + 1);
    }

    /// Sweep-plan enumeration is a pure cross-product: the cell count is
    /// the product of every axis length (plus the clean cell per pair,
    /// times the environment levels), plan indices equal positions, and
    /// member/dataset/environment indices stay in range — for arbitrary
    /// grid sizes.
    #[test]
    fn sweep_plan_is_a_complete_cross_product(
        n_members in 1usize..5,
        n_datasets in 1usize..4,
        n_eps in 1usize..4,
        n_phi in 1usize..4,
        n_env in 1usize..3,
        clean in any::<bool>(),
    ) {
        let mut spec = SweepSpec::full_grid(
            (0..n_eps).map(|i| 0.1 * (i + 1) as f64).collect(),
            (0..n_phi).map(|i| 10.0 * (i + 1) as f64).collect(),
        )
        .with_env_multipliers((0..n_env).map(|i| 1.0 + i as f64).collect());
        spec.include_clean = clean;
        let members: Vec<String> = (0..n_members).map(|i| format!("M{i}")).collect();
        let datasets: Vec<(String, String)> =
            (0..n_datasets).map(|i| ("B1".to_string(), format!("D{i}"))).collect();
        let plan = spec.plan(&members, &datasets);
        let per_block = usize::from(clean)
            + spec.attacks.len() * spec.variants.len() * spec.targetings.len() * n_eps * n_phi;
        prop_assert_eq!(plan.len(), n_members * n_datasets * n_env * per_block);
        for (i, cell) in plan.cells().iter().enumerate() {
            prop_assert_eq!(cell.plan_index, i);
            prop_assert!(cell.member < n_members);
            prop_assert!(cell.dataset < n_datasets);
            prop_assert!(cell.env < n_env);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The sharding law: **any** partition of the plan indices into
    /// contiguous shards, each run against its own store and merged,
    /// reproduces the one-shot sweep bit for bit — at `CALLOC_THREADS`
    /// 1, 2, 3 and 8 (via the process-local override).
    #[test]
    fn any_shard_partition_merges_to_the_one_shot_bytes(
        cuts in proptest::collection::vec(0usize..1000, 0..5),
    ) {
        let (scenario, knn, reference) = shard_fixture();
        let (plan, datasets) = shard_plan(scenario);
        let models: Vec<&dyn Localizer> = vec![knn];

        // Map the raw draws onto sorted, deduplicated cut points; the
        // gaps between consecutive boundaries are the shard windows
        // (empty windows are legal shards and must merge as no-ops).
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (plan.len() + 1)).collect();
        bounds.push(0);
        bounds.push(plan.len());
        bounds.sort_unstable();
        bounds.dedup();

        let _threads = par::ThreadGuard::new(1);
        for threads in [1usize, 2, 3, 8] {
            par::set_threads(threads);
            let mut merged = plan.memory_store();
            for window in bounds.windows(2) {
                let shard = plan.shard(window[0]..window[1]);
                let mut store = plan.memory_store();
                let report = shard
                    .run_with_store(&models, None, &datasets, &ExecSpec::default(), &mut store)
                    .expect("shard run");
                prop_assert!(report.is_complete(), "{}", report.summary());
                prop_assert_eq!(report.executed, window[1] - window[0]);
                merged.merge(&store).expect("disjoint shards");
            }
            prop_assert_eq!(merged.len(), plan.len());
            let csv = plan.table_from_store(&merged).to_csv();
            prop_assert_eq!(
                &csv,
                reference,
                "sharded sweep diverges from the one-shot run at {} threads with cuts {:?}",
                threads,
                bounds
            );
        }
    }
}

/// A per-process, per-case temp path for the persistence proptests.
fn tmp_file(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "calloc_prop_{}_{name}_{case}.bin",
        std::process::id()
    ))
}

/// A synthetic finished row for the truncation law below.
fn stored_row(plan_index: usize, salt: f64) -> ResultRow {
    ResultRow::clean(plan_index, "CALLOC", "B1", "OP3", salt, salt * 2.0)
}

/// Awkward `f64` bit patterns every parameter round trip must preserve:
/// negative zero, subnormals, infinities, and NaNs with payload bits.
const TRICKY_BITS: [u64; 7] = [
    0x8000_0000_0000_0000, // -0.0
    0x0000_0000_0000_0001, // smallest positive subnormal
    0x800F_FFFF_FFFF_FFFF, // negative subnormal
    0x7FF0_0000_0000_0000, // +inf
    0xFFF0_0000_0000_0000, // -inf
    0x7FF8_0000_DEAD_BEEF, // quiet NaN with payload
    0x7FF0_0000_0000_0001, // signalling NaN bit pattern
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The truncation law: **any** byte prefix of a valid store file
    /// either fails to open as [`StoreError::Corrupt`] or opens as a
    /// complete subset of the original rows (a prefix ending exactly on
    /// a record boundary is a smaller valid checkpoint) — never a panic,
    /// never a partial or altered row.
    #[test]
    fn any_store_prefix_is_corrupt_or_a_complete_subset(
        n_rows in 1usize..6,
        cut in 0.0..1.0f64,
        case in any::<u64>(),
    ) {
        let path = tmp_file("store_prefix", case);
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path, 16, 0xFEED).expect("fresh store");
        for i in 0..n_rows {
            store.insert(stored_row(i, i as f64 + 0.5)).expect("insert");
        }
        store.checkpoint().expect("checkpoint");
        let bytes = std::fs::read(&path).expect("read checkpoint");

        for len in [
            (bytes.len() as f64 * cut) as usize,
            0, 1, 7, 8, 27, 28, 29,
            bytes.len().saturating_sub(1),
            bytes.len(),
        ] {
            let len = len.min(bytes.len());
            std::fs::write(&path, &bytes[..len]).expect("write prefix");
            match ResultStore::open(&path, 16, 0xFEED) {
                Ok(opened) => {
                    prop_assert!(opened.len() <= n_rows);
                    for row in opened.rows() {
                        prop_assert_eq!(
                            row,
                            &stored_row(row.plan_index, row.plan_index as f64 + 0.5),
                            "prefix of {len} bytes altered a row"
                        );
                    }
                }
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => prop_assert!(
                    false,
                    "prefix of {} bytes: expected Ok or Corrupt, got {}",
                    len, other
                ),
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// The same truncation law for the model cache: any byte prefix of a
    /// valid cache file opens as a complete subset of the original
    /// entries or fails typed — never a panic, never partial bytes.
    #[test]
    fn any_cache_prefix_is_corrupt_or_a_complete_subset(
        n_entries in 1usize..5,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in 0.0..1.0f64,
        case in any::<u64>(),
    ) {
        let path = tmp_file("cache_prefix", case);
        let _ = std::fs::remove_file(&path);
        let mut cache = ModelCache::open(&path).expect("fresh cache");
        for i in 0..n_entries {
            let mut bytes = payload.clone();
            bytes.push(i as u8);
            cache.insert(&format!("KNN v1 k=3 @ cell {i}"), "KNN", bytes).expect("insert");
        }
        cache.checkpoint().expect("checkpoint");
        let bytes = std::fs::read(&path).expect("read checkpoint");

        for len in [
            (bytes.len() as f64 * cut) as usize,
            0, 1, 8, 12, 19, 20, 21,
            bytes.len().saturating_sub(1),
            bytes.len(),
        ] {
            let len = len.min(bytes.len());
            std::fs::write(&path, &bytes[..len]).expect("write prefix");
            match ModelCache::open(&path) {
                Ok(mut opened) => {
                    prop_assert!(opened.len() <= n_entries);
                    for i in 0..n_entries {
                        let key = format!("KNN v1 k=3 @ cell {i}");
                        if opened.contains(&key) {
                            let mut expect = payload.clone();
                            expect.push(i as u8);
                            prop_assert_eq!(
                                opened.get(&key),
                                Some(expect.as_slice()),
                                "prefix of {} bytes altered entry {}", len, i
                            );
                        }
                    }
                }
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => prop_assert!(
                    false,
                    "prefix of {} bytes: expected Ok or Corrupt, got {}",
                    len, other
                ),
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Cached model parameters round trip **bit-exactly** through a
    /// checkpoint/reopen cycle — including negative zero, subnormals,
    /// infinities and NaN payloads, which value-level equality would
    /// miss.
    #[test]
    fn cached_parameters_round_trip_bit_exactly(
        draws in proptest::collection::vec(any::<u64>(), 1..12),
        case in any::<u64>(),
    ) {
        let mut bits: Vec<u64> = draws;
        bits.extend_from_slice(&TRICKY_BITS);
        let cols = bits.len();
        let w = Matrix::from_rows(&[
            bits.iter().map(|&b| f64::from_bits(b)).collect::<Vec<f64>>()
        ]);
        let b = Matrix::from_rows(&[vec![f64::from_bits(TRICKY_BITS[5]); cols]]);
        let net = Sequential::new(vec![Layer::Dense(Dense { w, b }), Layer::Relu]);

        let path = tmp_file("bit_exact", case);
        let _ = std::fs::remove_file(&path);
        let mut cache = ModelCache::open(&path).expect("fresh cache");
        cache.insert_surrogate("surrogate v1 @ prop cell", &net).expect("insert");
        cache.checkpoint().expect("checkpoint");

        let mut reopened = ModelCache::open(&path).expect("reopen");
        let restored = reopened
            .get_surrogate("surrogate v1 @ prop cell")
            .expect("decode")
            .expect("present");
        let Layer::Dense(orig) = &net.layers()[0] else { unreachable!() };
        let Layer::Dense(back) = &restored.layers()[0] else {
            prop_assert!(false, "restored layer 0 is not Dense");
            unreachable!()
        };
        for (o, r) in orig.w.as_slice().iter().zip(back.w.as_slice()) {
            prop_assert_eq!(o.to_bits(), r.to_bits(), "weight bits diverged");
        }
        for (o, r) in orig.b.as_slice().iter().zip(back.b.as_slice()) {
            prop_assert_eq!(o.to_bits(), r.to_bits(), "bias bits diverged");
        }
        let _ = std::fs::remove_file(&path);
    }
}
