//! Trains the full framework suite of the paper's evaluation on a scenario.

use calloc::{CallocConfig, CallocTrainer, Curriculum};
use calloc_baselines::gbdt::GbdtConfig;
use calloc_baselines::{
    AdvLocConfig, AdvLocLocalizer, AnvilConfig, AnvilLocalizer, DnnConfig, DnnLocalizer, GpcConfig,
    GpcLocalizer, KnnLocalizer, SangriaConfig, SangriaLocalizer, WiDeepConfig, WiDeepLocalizer,
};
use calloc_nn::{DifferentiableModel, Localizer, Sequential};
use calloc_sim::{Dataset, Scenario, ScenarioSet};
use calloc_tensor::par;

use crate::cache::ModelCache;
use crate::fault::{ExecSpec, RunReport};
use crate::report::ResultTable;
use crate::store::{ResultStore, StoreError};
use crate::sweep::{run_env_sweep, run_sweep, SweepPlan, SweepSpec};

/// One trained framework in the suite.
pub struct SuiteMember {
    /// Framework name as used in the paper's figures.
    pub name: String,
    /// The trained model.
    pub model: Box<dyn Localizer>,
}

/// The trained suite: the paper's comparison frameworks plus a surrogate
/// DNN used to transfer-attack non-differentiable members (SANGRIA).
pub struct Suite {
    /// Trained frameworks, in figure order.
    pub members: Vec<SuiteMember>,
    /// Surrogate gradient source for transfer attacks.
    pub surrogate: Sequential,
}

/// Which frameworks to train and at what fidelity.
#[derive(Debug, Clone)]
pub struct SuiteProfile {
    /// CALLOC configuration.
    pub calloc: CallocConfig,
    /// Number of curriculum lessons (paper: 10).
    pub lessons: usize,
    /// Include the no-curriculum CALLOC ablation ("NC").
    pub include_nc: bool,
    /// Include the Fig. 6/7 state-of-the-art frameworks.
    pub include_sota: bool,
    /// Include the Fig. 1 classical baselines (KNN, GPC, DNN).
    pub include_classical: bool,
    /// Epoch budget for the DNN-family baselines.
    pub baseline_epochs: usize,
    /// FGSM ε used for adversarial *training* (CALLOC curriculum and
    /// AdvLoc), in normalized units. The paper trains at ε = 0.1; see
    /// `calloc-bench`'s `EPSILON_UNIT` for the unit calibration.
    pub train_epsilon: f64,
    /// Seed shared by all trainings.
    pub seed: u64,
}

impl SuiteProfile {
    /// Paper-fidelity profile: full-size models, 10 lessons.
    pub fn paper() -> Self {
        SuiteProfile {
            calloc: CallocConfig::default(),
            lessons: 10,
            include_nc: false,
            include_sota: true,
            include_classical: false,
            baseline_epochs: 80,
            train_epsilon: 0.025,
            seed: 0,
        }
    }

    /// Quick profile for tests and smoke runs: reduced widths and epochs.
    pub fn quick() -> Self {
        SuiteProfile {
            calloc: CallocConfig {
                epochs_per_lesson: 8,
                ..CallocConfig::fast()
            },
            lessons: 5,
            include_nc: false,
            include_sota: true,
            include_classical: false,
            baseline_epochs: 30,
            train_epsilon: 0.025,
            seed: 0,
        }
    }
}

/// A deferred member training: the figure name, the member half of its
/// model-cache key (the canonical encoding of everything that determines
/// the trained weights besides the collected data — see
/// [`crate::cache`]), and the closure that trains the model. Jobs are
/// independent (each framework derives its own RNG stream from the
/// profile seed), so the suite trainers can run them on worker threads
/// and collect the results in job (= figure) order.
struct MemberSpec<'a> {
    name: &'static str,
    key: String,
    train: MemberTrainer<'a>,
}

/// A deferred member training, boxed for the flat `par_run` fan-out.
type MemberTrainer<'a> = Box<dyn FnOnce() -> Box<dyn Localizer> + Send + 'a>;

/// One result of the suite's flat training fan-out: every framework and
/// the surrogate train in a single `par_run`. Member jobs may fan out
/// further (the worker pool gives nested fan-outs the full configured
/// budget); keeping this level flat just keeps the merge order trivially
/// the figure order.
enum Trained {
    /// A comparison-suite member, in figure order.
    Member(Box<dyn Localizer>),
    /// The transfer-attack surrogate network.
    Surrogate(Sequential),
}

/// The deferred member trainings of a profile, in figure order, each
/// carrying its cache-key half. The single source of truth shared by
/// [`Suite::train`] and [`Suite::train_cached`]: both paths train through
/// these exact closures, which is what makes a cache hit bit-identical to
/// a fresh train.
fn member_specs<'a>(scenario: &'a Scenario, profile: &'a SuiteProfile) -> Vec<MemberSpec<'a>> {
    let train = &scenario.train;
    let x = &train.x;
    let y = &train.labels;
    let k = train.num_classes();

    let mut specs: Vec<MemberSpec<'a>> = Vec::new();

    let calloc_trainer = CallocTrainer::new(profile.calloc).with_curriculum(Curriculum::linear(
        profile.lessons.max(2),
        profile.train_epsilon,
    ));
    {
        let trainer = calloc_trainer.clone();
        specs.push(MemberSpec {
            name: "CALLOC",
            key: Suite::calloc_key(profile),
            train: Box::new(move || Box::new(trainer.fit(train).model) as Box<dyn Localizer>),
        });
    }
    if profile.include_nc {
        let trainer = calloc_trainer;
        specs.push(MemberSpec {
            name: "NC",
            key: Suite::nc_key(profile),
            train: Box::new(move || {
                Box::new(trainer.fit_no_curriculum(train).model) as Box<dyn Localizer>
            }),
        });
    }

    if profile.include_sota {
        let config = AdvLocConfig {
            dnn: DnnConfig {
                epochs: profile.baseline_epochs,
                seed: profile.seed,
                ..Default::default()
            },
            epsilon: profile.train_epsilon,
            ..Default::default()
        };
        specs.push(MemberSpec {
            name: "AdvLoc",
            key: format!("AdvLoc v1 config={config:?}"),
            train: Box::new(move || {
                Box::new(AdvLocLocalizer::fit(x, y, k, &config)) as Box<dyn Localizer>
            }),
        });
        let config = SangriaConfig {
            pretrain_epochs: profile.baseline_epochs / 2,
            gbdt: GbdtConfig {
                rounds: 30,
                ..Default::default()
            },
            seed: profile.seed,
            ..Default::default()
        };
        specs.push(MemberSpec {
            name: "SANGRIA",
            key: format!("SANGRIA v1 config={config:?}"),
            train: Box::new(move || {
                Box::new(SangriaLocalizer::fit(x, y, k, &config)) as Box<dyn Localizer>
            }),
        });
        let config = AnvilConfig {
            epochs: profile.baseline_epochs,
            learning_rate: 5e-3,
            seed: profile.seed,
            ..Default::default()
        };
        specs.push(MemberSpec {
            name: "ANVIL",
            key: format!("ANVIL v1 config={config:?}"),
            train: Box::new(move || {
                Box::new(AnvilLocalizer::fit(x, y, k, &config)) as Box<dyn Localizer>
            }),
        });
        let config = WiDeepConfig {
            pretrain_epochs: profile.baseline_epochs / 2,
            seed: profile.seed,
            ..Default::default()
        };
        specs.push(MemberSpec {
            name: "WiDeep",
            key: format!("WiDeep v1 config={config:?}"),
            train: Box::new(move || {
                Box::new(
                    WiDeepLocalizer::fit(x, y, k, &config)
                        .expect("WiDeep GPC kernel must be positive definite"),
                ) as Box<dyn Localizer>
            }),
        });
    }

    if profile.include_classical {
        specs.push(MemberSpec {
            name: "KNN",
            key: "KNN v1 k=3".to_string(),
            train: Box::new(move || {
                Box::new(KnnLocalizer::fit(x.clone(), y.clone(), k, 3)) as Box<dyn Localizer>
            }),
        });
        let config = GpcConfig::default();
        specs.push(MemberSpec {
            name: "GPC",
            key: format!("GPC v1 config={config:?}"),
            train: Box::new(move || {
                Box::new(
                    GpcLocalizer::fit(x.clone(), y.clone(), k, config)
                        .expect("GPC kernel must be positive definite"),
                ) as Box<dyn Localizer>
            }),
        });
        let config = DnnConfig {
            epochs: profile.baseline_epochs,
            seed: profile.seed,
            ..Default::default()
        };
        specs.push(MemberSpec {
            name: "DNN",
            key: format!("DNN v1 config={config:?}"),
            train: Box::new(move || {
                Box::new(DnnLocalizer::fit(x, y, k, &config)) as Box<dyn Localizer>
            }),
        });
    }

    specs
}

/// The canonical fields of the CALLOC/NC cache keys: everything the
/// curriculum trainer derives its weights from besides the data.
fn calloc_key_fields(profile: &SuiteProfile) -> String {
    format!(
        "config={:?} lessons={} train_epsilon={:?}",
        profile.calloc,
        profile.lessons.max(2),
        profile.train_epsilon
    )
}

/// The resolved configuration of the transfer-attack surrogate DNN.
fn surrogate_config(profile: &SuiteProfile) -> DnnConfig {
    DnnConfig {
        hidden: vec![64],
        epochs: profile.baseline_epochs,
        seed: profile.seed ^ 0xDEAD,
        ..Default::default()
    }
}

impl Suite {
    /// Trains every requested framework on the scenario's offline data.
    ///
    /// Members train in parallel on up to `calloc_tensor::par::threads()`
    /// workers (`CALLOC_THREADS` knob; `1` = the old serial behavior).
    /// Each member consumes only its own seed-derived RNG stream and the
    /// results are merged in figure order, so the trained suite is
    /// bit-identical for every thread count.
    pub fn train(scenario: &Scenario, profile: &SuiteProfile) -> Suite {
        let train = &scenario.train;
        let x = &train.x;
        let y = &train.labels;
        let k = train.num_classes();

        let (names, member_jobs): (Vec<&'static str>, Vec<_>) = member_specs(scenario, profile)
            .into_iter()
            .map(|spec| (spec.name, spec.train))
            .unzip();

        // One flat fan-out: every member plus the surrogate (an
        // independent gradient source for transfer attacks against
        // non-differentiable members) as the last job.
        let mut trainings: Vec<Box<dyn FnOnce() -> Trained + Send + '_>> = member_jobs
            .into_iter()
            .map(|job: Box<dyn FnOnce() -> Box<dyn Localizer> + Send + '_>| {
                Box::new(move || Trained::Member(job())) as Box<dyn FnOnce() -> Trained + Send + '_>
            })
            .collect();
        let config = surrogate_config(profile);
        trainings.push(Box::new(move || {
            Trained::Surrogate(DnnLocalizer::fit(x, y, k, &config).network().clone())
        }));

        let mut trained = par::par_run(trainings);
        let Some(Trained::Surrogate(surrogate)) = trained.pop() else {
            unreachable!("the last job is always the surrogate");
        };
        let members = names
            .into_iter()
            .zip(trained)
            .map(|(name, trained)| {
                let Trained::Member(model) = trained else {
                    unreachable!("only the last job is the surrogate");
                };
                SuiteMember {
                    name: name.into(),
                    model,
                }
            })
            .collect();
        Suite { members, surrogate }
    }

    /// Like [`train`](Self::train), but backed by a [`ModelCache`]:
    /// members (and the surrogate) whose `(config, cell)` key is already
    /// cached are restored bit-identically instead of retrained, only the
    /// misses train (in one flat fan-out merged in figure order, each on
    /// its own seed-derived RNG stream — so every miss trains
    /// bit-identically to [`train`](Self::train)), the fresh models are
    /// recorded, and the cache is checkpointed once at the end.
    ///
    /// `cell` must be the scenario's [`calloc_sim::collection_identity`]
    /// (see [`calloc_sim::ScenarioSet::cell_identity`]) — the caller
    /// vouches that `scenario` was collected exactly so. Repeated cells
    /// across figures and sweeps then train each unique
    /// `(member config, cell)` pair exactly once; the cache's hit/miss
    /// counters make the claim checkable.
    ///
    /// # Errors
    ///
    /// Fails if the cache holds undecodable entries for one of the keys,
    /// a key collides ([`StoreError::DuplicateModel`]), or the checkpoint
    /// write fails.
    pub fn train_cached(
        scenario: &Scenario,
        profile: &SuiteProfile,
        cell: &str,
        cache: &mut ModelCache,
    ) -> Result<Suite, StoreError> {
        let train = &scenario.train;
        let x = &train.x;
        let y = &train.labels;
        let k = train.num_classes();

        let specs = member_specs(scenario, profile);
        let mut names = Vec::with_capacity(specs.len());
        let mut keys = Vec::with_capacity(specs.len());
        let mut slots: Vec<Option<Box<dyn Localizer>>> = Vec::with_capacity(specs.len());
        let mut miss_jobs: Vec<(usize, MemberTrainer<'_>)> = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            let key = Suite::cache_key(&spec.key, cell);
            let cached = cache.get_member(&key, spec.name)?;
            if cached.is_none() {
                miss_jobs.push((i, spec.train));
            }
            slots.push(cached);
            names.push(spec.name);
            keys.push(key);
        }
        let config = surrogate_config(profile);
        let surrogate_key = Suite::cache_key(&format!("surrogate v1 config={config:?}"), cell);
        let cached_surrogate = cache.get_surrogate(&surrogate_key)?;
        let train_surrogate = cached_surrogate.is_none();

        // Train only the misses — same flat fan-out as `train`, merged in
        // figure order.
        let (miss_indices, miss_trainings): (Vec<usize>, Vec<_>) = miss_jobs.into_iter().unzip();
        let mut trainings: Vec<Box<dyn FnOnce() -> Trained + Send + '_>> = miss_trainings
            .into_iter()
            .map(|job: Box<dyn FnOnce() -> Box<dyn Localizer> + Send + '_>| {
                Box::new(move || Trained::Member(job())) as Box<dyn FnOnce() -> Trained + Send + '_>
            })
            .collect();
        if train_surrogate {
            trainings.push(Box::new(move || {
                Trained::Surrogate(DnnLocalizer::fit(x, y, k, &config).network().clone())
            }));
        }
        let mut trained = par::par_run(trainings);

        let surrogate = if train_surrogate {
            let Some(Trained::Surrogate(surrogate)) = trained.pop() else {
                unreachable!("the last job is the surrogate when it missed");
            };
            cache.insert_surrogate(&surrogate_key, &surrogate)?;
            surrogate
        } else {
            cached_surrogate.expect("cached surrogate on a hit")
        };
        for (i, trained) in miss_indices.into_iter().zip(trained) {
            let Trained::Member(model) = trained else {
                unreachable!("member jobs yield members");
            };
            cache.insert_member(&keys[i], names[i], model.as_ref())?;
            slots[i] = Some(model);
        }
        cache.checkpoint()?;

        let members = names
            .into_iter()
            .zip(slots)
            .map(|(name, model)| SuiteMember {
                name: name.into(),
                model: model.expect("every slot is a hit or a fresh train"),
            })
            .collect();
        Ok(Suite { members, surrogate })
    }

    /// Names of the members `profile` trains on `scenario`, in figure
    /// order — the valid `name` arguments of
    /// [`train_member_cached`](Self::train_member_cached).
    pub fn member_names(scenario: &Scenario, profile: &SuiteProfile) -> Vec<&'static str> {
        member_specs(scenario, profile)
            .into_iter()
            .map(|spec| spec.name)
            .collect()
    }

    /// Trains — or restores from `cache` — the single member `name` of
    /// `profile`, without touching the rest of the suite. This is the
    /// serving layer's registry hook: a server process populates its
    /// model registry member by member through the same cache keys the
    /// figure binaries train through, so a warm cache makes startup a
    /// pure restore and the served model is bit-identical to the
    /// evaluated one.
    ///
    /// Returns `Ok(None)` when `profile` does not train a member called
    /// `name` (see [`member_names`](Self::member_names)).
    ///
    /// # Errors
    ///
    /// Fails if the cache holds an undecodable entry for the key, the
    /// key collides, or the checkpoint write fails.
    pub fn train_member_cached(
        scenario: &Scenario,
        profile: &SuiteProfile,
        name: &str,
        cell: &str,
        cache: &mut ModelCache,
    ) -> Result<Option<Box<dyn Localizer>>, StoreError> {
        let Some(spec) = member_specs(scenario, profile)
            .into_iter()
            .find(|spec| spec.name == name)
        else {
            return Ok(None);
        };
        let key = Suite::cache_key(&spec.key, cell);
        let model = cache.member(&key, spec.name, spec.train)?;
        cache.checkpoint()?;
        Ok(Some(model))
    }

    /// The member half of CALLOC's model-cache key under this profile —
    /// for binaries that train CALLOC directly (Figs. 4/5, ablations)
    /// through [`ModelCache::calloc`].
    pub fn calloc_key(profile: &SuiteProfile) -> String {
        format!("CALLOC v1 {}", calloc_key_fields(profile))
    }

    /// The member half of the no-curriculum ablation's model-cache key
    /// under this profile — for Fig. 5, which trains the NC variant
    /// directly; the same key the suite trainer uses when
    /// [`SuiteProfile::include_nc`] is set, so the two paths share
    /// cached models.
    pub fn nc_key(profile: &SuiteProfile) -> String {
        format!("NC v1 {}", calloc_key_fields(profile))
    }

    /// Composes a member key half with a scenario-cell identity into the
    /// full model-cache key.
    pub fn cache_key(member_key: &str, cell: &str) -> String {
        format!("{member_key} @ {cell}")
    }

    /// Looks up a trained member by name.
    pub fn member(&self, name: &str) -> Option<&SuiteMember> {
        self.members.iter().find(|m| m.name == name)
    }

    /// The surrogate as a gradient source.
    pub fn surrogate(&self) -> &dyn DifferentiableModel {
        &self.surrogate
    }

    /// Runs an attack sweep over every trained member on the given
    /// `(building, device, fingerprints)` datasets, transfer-attacking
    /// non-differentiable members through the suite surrogate. Rows come
    /// back in plan-index order (members in figure order outermost), so
    /// the table is bit-identical for every thread count — see
    /// [`crate::sweep`].
    pub fn sweep(&self, datasets: &[(String, String, &Dataset)], spec: &SweepSpec) -> ResultTable {
        let members: Vec<(&str, &dyn Localizer)> = self
            .members
            .iter()
            .map(|m| (m.name.as_str(), m.model.as_ref()))
            .collect();
        run_sweep(&members, Some(self.surrogate()), datasets, spec)
    }

    /// Runs an environment-robustness × attack sweep over every trained
    /// member: `scenarios[e]` must be the suite's collection protocol
    /// re-generated under `spec.env_multipliers[e]` (a
    /// `calloc_sim::ScenarioSpec::single(..).with_environments(..)` grid
    /// produces the list, with the baseline sharing the training survey
    /// bit for bit), and every cell with environment index `e` evaluates
    /// on `scenarios[e]`'s test sets — one table where environment and
    /// attack robustness compose. See [`run_env_sweep`].
    ///
    /// # Panics
    ///
    /// Panics if `scenarios.len() != spec.env_multipliers.len()` or the
    /// scenarios disagree on their device lists.
    pub fn env_sweep(
        &self,
        building: &str,
        scenarios: &[&Scenario],
        spec: &SweepSpec,
    ) -> ResultTable {
        let members: Vec<(&str, &dyn Localizer)> = self
            .members
            .iter()
            .map(|m| (m.name.as_str(), m.model.as_ref()))
            .collect();
        run_env_sweep(&members, Some(self.surrogate()), building, scenarios, spec)
    }

    /// Enumerates the plan that [`sweep`](Self::sweep) would execute
    /// over the given datasets — the entry point of the fault-tolerant
    /// layer: [shard](SweepPlan::shard) it, [open a
    /// store](SweepPlan::open_store) with it, and execute with
    /// [`sweep_with_store`](Self::sweep_with_store).
    pub fn sweep_plan(
        &self,
        datasets: &[(String, String, &Dataset)],
        spec: &SweepSpec,
    ) -> SweepPlan {
        let names: Vec<String> = self.members.iter().map(|m| m.name.clone()).collect();
        let labels: Vec<(String, String)> = datasets
            .iter()
            .map(|(b, d, _)| (b.clone(), d.clone()))
            .collect();
        spec.plan(&names, &labels)
    }

    /// The trained member models in figure order — the `models` argument
    /// the [`SweepPlan`] executors expect for plans built by
    /// [`sweep_plan`](Self::sweep_plan).
    pub fn sweep_models(&self) -> Vec<&dyn Localizer> {
        self.members.iter().map(|m| m.model.as_ref()).collect()
    }

    /// Like [`sweep`](Self::sweep), but with per-cell panic quarantine
    /// and bounded deterministic retries — a poisoned cell becomes a
    /// recorded [`crate::fault::CellError`] in the returned report
    /// instead of killing the sweep. With no failures the report's table
    /// is bit-identical to [`sweep`](Self::sweep)'s. See
    /// [`SweepPlan::run_fault_tolerant`].
    pub fn sweep_fault_tolerant(
        &self,
        datasets: &[(String, String, &Dataset)],
        spec: &SweepSpec,
        exec: &ExecSpec,
    ) -> RunReport {
        let data: Vec<&Dataset> = datasets.iter().map(|(_, _, d)| *d).collect();
        self.sweep_plan(datasets, spec).run_fault_tolerant(
            &self.sweep_models(),
            Some(self.surrogate()),
            &data,
            exec,
        )
    }

    /// Executes a (possibly [sharded](SweepPlan::shard)) plan from
    /// [`sweep_plan`](Self::sweep_plan) against a checkpointed result
    /// store: only cells missing from the store run, so rerunning after
    /// a crash resumes where the last checkpoint left off. See
    /// [`SweepPlan::run_with_store`] for the full resume and failure
    /// semantics.
    ///
    /// # Errors
    ///
    /// Fails if the store belongs to a different sweep or a checkpoint
    /// write fails.
    pub fn sweep_with_store(
        &self,
        plan: &SweepPlan,
        datasets: &[(String, String, &Dataset)],
        exec: &ExecSpec,
        store: &mut ResultStore,
    ) -> Result<RunReport, StoreError> {
        let data: Vec<&Dataset> = datasets.iter().map(|(_, _, d)| *d).collect();
        plan.run_with_store(
            &self.sweep_models(),
            Some(self.surrogate()),
            &data,
            exec,
            store,
        )
    }

    /// The sweep datasets of a scenario: every per-device test set,
    /// labelled with `building` and the device acronym, in collection
    /// order.
    pub fn scenario_datasets<'a>(
        scenario: &'a Scenario,
        building: &str,
    ) -> Vec<(String, String, &'a Dataset)> {
        scenario
            .test_per_device
            .iter()
            .map(|(d, t)| (building.to_string(), d.acronym.clone(), t))
            .collect()
    }

    /// The sweep datasets of one [`ScenarioSet`] entry: the entry's
    /// per-device test sets labelled with its building's Table II name —
    /// how the figure binaries view a generated grid cell.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the set.
    pub fn set_datasets(set: &ScenarioSet, index: usize) -> Vec<(String, String, &Dataset)> {
        Self::scenario_datasets(set.scenario(index), set.building_name(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};

    fn tiny_scenario() -> Scenario {
        let spec = BuildingSpec {
            path_length_m: 12,
            num_aps: 16,
            ..BuildingId::B4.spec()
        };
        let building = Building::generate(spec, 4);
        Scenario::generate(&building, &CollectionConfig::small(), 9)
    }

    fn tiny_profile() -> SuiteProfile {
        SuiteProfile {
            calloc: CallocConfig {
                epochs_per_lesson: 4,
                ..CallocConfig::fast()
            },
            lessons: 3,
            include_nc: true,
            include_sota: true,
            include_classical: true,
            baseline_epochs: 10,
            train_epsilon: 0.025,
            seed: 1,
        }
    }

    #[test]
    fn trains_all_requested_members() {
        let scenario = tiny_scenario();
        let suite = Suite::train(&scenario, &tiny_profile());
        let names: Vec<&str> = suite.members.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["CALLOC", "NC", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep", "KNN", "GPC", "DNN"]
        );
    }

    #[test]
    fn every_member_evaluates_on_test_data() {
        let scenario = tiny_scenario();
        let suite = Suite::train(&scenario, &tiny_profile());
        let test = &scenario.test_per_device[0].1;
        for member in &suite.members {
            let eval = evaluate(member.model.as_ref(), test, None, None);
            assert_eq!(eval.errors_m.len(), test.len(), "{}", member.name);
            assert!(eval.summary.mean.is_finite(), "{}", member.name);
        }
    }

    #[test]
    fn train_cached_restores_bit_identical_models() {
        let scenario = tiny_scenario();
        let profile = tiny_profile();
        let cell = "suite-test cell";
        let mut cache = ModelCache::in_memory();

        let cold = Suite::train_cached(&scenario, &profile, cell, &mut cache).expect("cold");
        assert_eq!(cache.hits(), 0, "cold run hits nothing");
        assert_eq!(cache.misses(), 10, "9 members + surrogate miss once");
        assert_eq!(cache.len(), 10, "every training is recorded");

        let warm = Suite::train_cached(&scenario, &profile, cell, &mut cache).expect("warm");
        assert_eq!(cache.hits(), 10, "warm run hits everything");
        assert_eq!(cache.misses(), 10, "warm run trains nothing new");

        // The determinism contract, pinned: a cache hit is bit-identical
        // to the cold train AND to an uncached `Suite::train`.
        let fresh = Suite::train(&scenario, &profile);
        for ((c, w), f) in cold.members.iter().zip(&warm.members).zip(&fresh.members) {
            assert_eq!(c.name, w.name);
            assert_eq!(c.name, f.name);
            let cs = c.model.state().expect("every member encodes");
            assert_eq!(cs, w.model.state().unwrap(), "{} warm != cold", c.name);
            assert_eq!(cs, f.model.state().unwrap(), "{} cached != fresh", c.name);
        }
        let surr = |s: &Suite| {
            let mut w = calloc_nn::state::StateWriter::new();
            calloc_nn::state::write_sequential(&mut w, &s.surrogate);
            w.into_bytes()
        };
        assert_eq!(surr(&cold), surr(&warm), "surrogate warm != cold");
        assert_eq!(surr(&cold), surr(&fresh), "surrogate cached != fresh");
    }

    #[test]
    fn member_lookup_works() {
        let scenario = tiny_scenario();
        let mut profile = tiny_profile();
        profile.include_classical = false;
        profile.include_nc = false;
        let suite = Suite::train(&scenario, &profile);
        assert!(suite.member("CALLOC").is_some());
        assert!(suite.member("KNN").is_none());
    }
}
