//! Trains the full framework suite of the paper's evaluation on a scenario.

use calloc::{CallocConfig, CallocTrainer, Curriculum};
use calloc_baselines::gbdt::GbdtConfig;
use calloc_baselines::{
    AdvLocConfig, AdvLocLocalizer, AnvilConfig, AnvilLocalizer, DnnConfig, DnnLocalizer, GpcConfig,
    GpcLocalizer, KnnLocalizer, SangriaConfig, SangriaLocalizer, WiDeepConfig, WiDeepLocalizer,
};
use calloc_nn::{DifferentiableModel, Localizer, Sequential};
use calloc_sim::Scenario;

/// One trained framework in the suite.
pub struct SuiteMember {
    /// Framework name as used in the paper's figures.
    pub name: String,
    /// The trained model.
    pub model: Box<dyn Localizer>,
}

/// The trained suite: the paper's comparison frameworks plus a surrogate
/// DNN used to transfer-attack non-differentiable members (SANGRIA).
pub struct Suite {
    /// Trained frameworks, in figure order.
    pub members: Vec<SuiteMember>,
    /// Surrogate gradient source for transfer attacks.
    pub surrogate: Sequential,
}

/// Which frameworks to train and at what fidelity.
#[derive(Debug, Clone)]
pub struct SuiteProfile {
    /// CALLOC configuration.
    pub calloc: CallocConfig,
    /// Number of curriculum lessons (paper: 10).
    pub lessons: usize,
    /// Include the no-curriculum CALLOC ablation ("NC").
    pub include_nc: bool,
    /// Include the Fig. 6/7 state-of-the-art frameworks.
    pub include_sota: bool,
    /// Include the Fig. 1 classical baselines (KNN, GPC, DNN).
    pub include_classical: bool,
    /// Epoch budget for the DNN-family baselines.
    pub baseline_epochs: usize,
    /// FGSM ε used for adversarial *training* (CALLOC curriculum and
    /// AdvLoc), in normalized units. The paper trains at ε = 0.1; see
    /// `calloc-bench`'s `EPSILON_UNIT` for the unit calibration.
    pub train_epsilon: f64,
    /// Seed shared by all trainings.
    pub seed: u64,
}

impl SuiteProfile {
    /// Paper-fidelity profile: full-size models, 10 lessons.
    pub fn paper() -> Self {
        SuiteProfile {
            calloc: CallocConfig::default(),
            lessons: 10,
            include_nc: false,
            include_sota: true,
            include_classical: false,
            baseline_epochs: 80,
            train_epsilon: 0.025,
            seed: 0,
        }
    }

    /// Quick profile for tests and smoke runs: reduced widths and epochs.
    pub fn quick() -> Self {
        SuiteProfile {
            calloc: CallocConfig {
                epochs_per_lesson: 8,
                ..CallocConfig::fast()
            },
            lessons: 5,
            include_nc: false,
            include_sota: true,
            include_classical: false,
            baseline_epochs: 30,
            train_epsilon: 0.025,
            seed: 0,
        }
    }
}

impl Suite {
    /// Trains every requested framework on the scenario's offline data.
    pub fn train(scenario: &Scenario, profile: &SuiteProfile) -> Suite {
        let train = &scenario.train;
        let x = &train.x;
        let y = &train.labels;
        let k = train.num_classes();
        let mut members: Vec<SuiteMember> = Vec::new();

        let calloc_trainer = CallocTrainer::new(profile.calloc).with_curriculum(
            Curriculum::linear(profile.lessons.max(2), profile.train_epsilon),
        );
        let calloc_model = calloc_trainer.fit(train).model;
        members.push(SuiteMember {
            name: "CALLOC".into(),
            model: Box::new(calloc_model),
        });
        if profile.include_nc {
            let nc = calloc_trainer.fit_no_curriculum(train).model;
            members.push(SuiteMember {
                name: "NC".into(),
                model: Box::new(nc),
            });
        }

        if profile.include_sota {
            let advloc = AdvLocLocalizer::fit(
                x,
                y,
                k,
                &AdvLocConfig {
                    dnn: DnnConfig {
                        epochs: profile.baseline_epochs,
                        seed: profile.seed,
                        ..Default::default()
                    },
                    epsilon: profile.train_epsilon,
                    ..Default::default()
                },
            );
            members.push(SuiteMember {
                name: "AdvLoc".into(),
                model: Box::new(advloc),
            });

            let sangria = SangriaLocalizer::fit(
                x,
                y,
                k,
                &SangriaConfig {
                    pretrain_epochs: profile.baseline_epochs / 2,
                    gbdt: GbdtConfig {
                        rounds: 30,
                        ..Default::default()
                    },
                    seed: profile.seed,
                    ..Default::default()
                },
            );
            members.push(SuiteMember {
                name: "SANGRIA".into(),
                model: Box::new(sangria),
            });

            let anvil = AnvilLocalizer::fit(
                x,
                y,
                k,
                &AnvilConfig {
                    epochs: profile.baseline_epochs,
                    learning_rate: 5e-3,
                    seed: profile.seed,
                    ..Default::default()
                },
            );
            members.push(SuiteMember {
                name: "ANVIL".into(),
                model: Box::new(anvil),
            });

            let wideep = WiDeepLocalizer::fit(
                x,
                y,
                k,
                &WiDeepConfig {
                    pretrain_epochs: profile.baseline_epochs / 2,
                    seed: profile.seed,
                    ..Default::default()
                },
            )
            .expect("WiDeep GPC kernel must be positive definite");
            members.push(SuiteMember {
                name: "WiDeep".into(),
                model: Box::new(wideep),
            });
        }

        if profile.include_classical {
            let knn = KnnLocalizer::fit(x.clone(), y.clone(), k, 3);
            members.push(SuiteMember {
                name: "KNN".into(),
                model: Box::new(knn),
            });
            let gpc = GpcLocalizer::fit(x.clone(), y.clone(), k, GpcConfig::default())
                .expect("GPC kernel must be positive definite");
            members.push(SuiteMember {
                name: "GPC".into(),
                model: Box::new(gpc),
            });
            let dnn = DnnLocalizer::fit(
                x,
                y,
                k,
                &DnnConfig {
                    epochs: profile.baseline_epochs,
                    seed: profile.seed,
                    ..Default::default()
                },
            );
            members.push(SuiteMember {
                name: "DNN".into(),
                model: Box::new(dnn),
            });
        }

        // Independent surrogate for transfer attacks against
        // non-differentiable members.
        let surrogate = DnnLocalizer::fit(
            x,
            y,
            k,
            &DnnConfig {
                hidden: vec![64],
                epochs: profile.baseline_epochs,
                seed: profile.seed ^ 0xDEAD,
                ..Default::default()
            },
        );
        Suite {
            members,
            surrogate: surrogate.network().clone(),
        }
    }

    /// Looks up a trained member by name.
    pub fn member(&self, name: &str) -> Option<&SuiteMember> {
        self.members.iter().find(|m| m.name == name)
    }

    /// The surrogate as a gradient source.
    pub fn surrogate(&self) -> &dyn DifferentiableModel {
        &self.surrogate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};

    fn tiny_scenario() -> Scenario {
        let spec = BuildingSpec {
            path_length_m: 12,
            num_aps: 16,
            ..BuildingId::B4.spec()
        };
        let building = Building::generate(spec, 4);
        Scenario::generate(&building, &CollectionConfig::small(), 9)
    }

    fn tiny_profile() -> SuiteProfile {
        SuiteProfile {
            calloc: CallocConfig {
                epochs_per_lesson: 4,
                ..CallocConfig::fast()
            },
            lessons: 3,
            include_nc: true,
            include_sota: true,
            include_classical: true,
            baseline_epochs: 10,
            train_epsilon: 0.025,
            seed: 1,
        }
    }

    #[test]
    fn trains_all_requested_members() {
        let scenario = tiny_scenario();
        let suite = Suite::train(&scenario, &tiny_profile());
        let names: Vec<&str> = suite.members.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["CALLOC", "NC", "AdvLoc", "SANGRIA", "ANVIL", "WiDeep", "KNN", "GPC", "DNN"]
        );
    }

    #[test]
    fn every_member_evaluates_on_test_data() {
        let scenario = tiny_scenario();
        let suite = Suite::train(&scenario, &tiny_profile());
        let test = &scenario.test_per_device[0].1;
        for member in &suite.members {
            let eval = evaluate(member.model.as_ref(), test, None, None);
            assert_eq!(eval.errors_m.len(), test.len(), "{}", member.name);
            assert!(eval.summary.mean.is_finite(), "{}", member.name);
        }
    }

    #[test]
    fn member_lookup_works() {
        let scenario = tiny_scenario();
        let mut profile = tiny_profile();
        profile.include_classical = false;
        profile.include_nc = false;
        let suite = Suite::train(&scenario, &profile);
        assert!(suite.member("CALLOC").is_some());
        assert!(suite.member("KNN").is_none());
    }
}
