//! Compact binary result store: the crash-safe persistence layer of the
//! fault-tolerant sweep engine.
//!
//! A [`ResultStore`] holds finished sweep rows **keyed by plan index** —
//! the same merge key as the engine's determinism contract (see
//! [`crate::sweep`]) — and optionally mirrors them to a file:
//!
//! * **Format.** A fixed header (magic, format version, the plan's total
//!   cell count and its [fingerprint](crate::SweepPlan::fingerprint)),
//!   followed by one length-prefixed binary record per finished cell.
//!   Floats are stored as raw `f64` bit patterns, so a disk round trip is
//!   exact and a resumed sweep's CSV stays byte-identical to a clean
//!   one-shot run.
//! * **Checkpoint cadence.** Records accumulate append-only in memory;
//!   [`ResultStore::checkpoint`] serializes the complete record set to a
//!   sibling temp file and atomically renames it over the store path
//!   (see [`write_atomic`]). The visible file is therefore *always* a
//!   complete, decodable checkpoint — a kill mid-run loses at most the
//!   records since the last checkpoint, never the file.
//! * **Merge semantics.** Records are replayed in ascending plan index
//!   (the backing map is ordered), so a table assembled from a store —
//!   or from several shard stores merged with [`ResultStore::merge`] —
//!   is bit-identical to the one-shot run. A plan index present on both
//!   sides of a merge (or inserted twice) is an **error**
//!   ([`StoreError::DuplicateCell`]), never a silent last-wins: two
//!   shards that executed the same cell indicate a mis-split sweep, and
//!   the rows could disagree.
//! * **Identity.** The header pins the parent plan's shape: opening a
//!   store whose recorded cell count or fingerprint disagrees with the
//!   plan being resumed fails with [`StoreError::PlanMismatch`] instead
//!   of silently mixing results from different sweeps. Shards of one
//!   plan share both values, so any shard (or the full plan) can open
//!   any of the sweep's stores.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::report::ResultRow;

/// Magic bytes leading every store file.
const MAGIC: &[u8; 8] = b"CALLOCRS";
/// On-disk format version.
const VERSION: u32 = 1;

/// Typed I/O and integrity errors of the result-store layer (also used by
/// the crash-safe writers in [`crate::report`] and the bench binaries).
/// Every file-system variant carries the offending path, so a failure
/// three hours into a sweep names the file, not just the errno.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying file-system operation failed.
    Io {
        /// The file the operation was acting on.
        path: PathBuf,
        /// The error reported by the operating system.
        source: std::io::Error,
    },
    /// The store file exists but does not decode as a complete checkpoint.
    Corrupt {
        /// The file that failed to decode.
        path: PathBuf,
        /// What the decoder tripped over.
        detail: String,
    },
    /// The store belongs to a different sweep than the plan resuming it.
    PlanMismatch {
        /// The store file (`None` for an in-memory store).
        path: Option<PathBuf>,
        /// How the identities disagree.
        detail: String,
    },
    /// A plan index was recorded twice — overlapping shards or a
    /// duplicated insert; merging is strict, never last-wins.
    DuplicateCell {
        /// The doubly-recorded plan index.
        plan_index: usize,
    },
    /// A model-cache key was recorded twice — a duplicated insert or
    /// overlapping merge sides (see [`crate::cache::ModelCache`]);
    /// caching is strict, never last-wins.
    DuplicateModel {
        /// The doubly-recorded cache key.
        key: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt result store {}: {detail}", path.display())
            }
            StoreError::PlanMismatch { path, detail } => match path {
                Some(p) => write!(
                    f,
                    "store {} is for a different sweep: {detail}",
                    p.display()
                ),
                None => write!(f, "in-memory store is for a different sweep: {detail}"),
            },
            StoreError::DuplicateCell { plan_index } => {
                write!(
                    f,
                    "plan index {plan_index} recorded twice (overlapping shards?)"
                )
            }
            StoreError::DuplicateModel { key } => {
                write!(
                    f,
                    "model cache key {key:?} recorded twice (overlapping merge?)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Writes `bytes` to `path` crash-safely: the content goes to a sibling
/// temp file first and is atomically renamed over the destination, so a
/// kill mid-write can never leave a truncated file that looks like
/// results — the destination either keeps its old content or gains the
/// complete new content.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = sibling_tmp(path);
    fs::write(&tmp, bytes).map_err(|source| StoreError::Io {
        path: tmp.clone(),
        source,
    })?;
    fs::rename(&tmp, path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// The sibling temp path `write_atomic` stages through: the destination
/// file name extended with `.<pid>.tmp`, in the same directory (renames
/// are only atomic within one file system).
fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Removes leftover `write_atomic` temp files for `path`: siblings named
/// `<filename>.<pid>.tmp` whose pid is not ours. A process killed between
/// temp creation and rename leaves its temp behind forever (the rename
/// never runs), so the next owner of the store path sweeps them on
/// [`ResultStore::open`] and [`ResultStore::checkpoint`]. Only temps of
/// *other* pids are touched — a store path has a single owning process at
/// a time (shards write disjoint files), so those temps are necessarily
/// stale. Best-effort: removal errors are ignored (the sweep must never
/// fail an open), and the count of removed files is returned for tests.
pub(crate) fn sweep_stale_temps(path: &Path) -> usize {
    let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Ok(entries) = fs::read_dir(&dir) else {
        return 0;
    };
    let prefix = format!("{file_name}.");
    let own = format!("{file_name}.{}.tmp", std::process::id());
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(middle) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".tmp"))
        else {
            continue;
        };
        let is_pid = !middle.is_empty() && middle.bytes().all(|b| b.is_ascii_digit());
        if is_pid && name != own && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// A plan-index-keyed set of finished sweep rows, optionally mirrored to
/// a crash-safe store file. See the [module docs](self) for the format,
/// checkpoint and merge contracts.
#[derive(Debug)]
pub struct ResultStore {
    path: Option<PathBuf>,
    plan_cells: usize,
    fingerprint: u64,
    rows: BTreeMap<usize, ResultRow>,
}

impl ResultStore {
    /// An empty in-memory store for the given plan identity (total cell
    /// count and fingerprint — both from the *unsharded* plan; see
    /// [`crate::SweepPlan::full_len`]). Checkpoints are no-ops.
    pub fn in_memory(plan_cells: usize, fingerprint: u64) -> Self {
        ResultStore {
            path: None,
            plan_cells,
            fingerprint,
            rows: BTreeMap::new(),
        }
    }

    /// Opens (or creates) the store file at `path` for the given plan
    /// identity. An existing file is decoded and validated: a header
    /// disagreeing with `plan_cells`/`fingerprint` is a
    /// [`StoreError::PlanMismatch`]; an undecodable file is
    /// [`StoreError::Corrupt`]. A missing file yields an empty store
    /// (created on the first [`checkpoint`](Self::checkpoint)). Stale
    /// `*.tmp.<pid>` siblings left by a previously killed writer are
    /// swept away (see [`sweep_stale_temps`]).
    pub fn open(path: &Path, plan_cells: usize, fingerprint: u64) -> Result<Self, StoreError> {
        let mut store = ResultStore {
            path: Some(path.to_path_buf()),
            plan_cells,
            fingerprint,
            rows: BTreeMap::new(),
        };
        sweep_stale_temps(path);
        match fs::read(path) {
            Ok(bytes) => {
                store.load(&bytes, path)?;
                Ok(store)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(store),
            Err(source) => Err(StoreError::Io {
                path: path.to_path_buf(),
                source,
            }),
        }
    }

    /// The store file path (`None` for an in-memory store).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Total cell count of the plan this store belongs to.
    pub fn plan_cells(&self) -> usize {
        self.plan_cells
    }

    /// Fingerprint of the plan this store belongs to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether a plan index has a recorded row.
    pub fn contains(&self, plan_index: usize) -> bool {
        self.rows.contains_key(&plan_index)
    }

    /// The recorded row of a plan index, if any.
    pub fn get(&self, plan_index: usize) -> Option<&ResultRow> {
        self.rows.get(&plan_index)
    }

    /// Iterates the recorded rows in ascending plan index — the merge
    /// order of the determinism contract.
    pub fn rows(&self) -> impl Iterator<Item = &ResultRow> {
        self.rows.values()
    }

    /// Validates that this store belongs to the given plan identity.
    pub fn check_plan(&self, plan_cells: usize, fingerprint: u64) -> Result<(), StoreError> {
        if self.plan_cells != plan_cells || self.fingerprint != fingerprint {
            return Err(StoreError::PlanMismatch {
                path: self.path.clone(),
                detail: format!(
                    "store is for {} cells / fingerprint {:#018x}, \
                     plan has {} cells / fingerprint {:#018x}",
                    self.plan_cells, self.fingerprint, plan_cells, fingerprint
                ),
            });
        }
        Ok(())
    }

    /// Records a finished row. The row's plan index must lie inside the
    /// plan and must not have been recorded before (strict, never
    /// last-wins). The record is in-memory until the next
    /// [`checkpoint`](Self::checkpoint).
    pub fn insert(&mut self, row: ResultRow) -> Result<(), StoreError> {
        if row.plan_index >= self.plan_cells {
            return Err(StoreError::PlanMismatch {
                path: self.path.clone(),
                detail: format!(
                    "plan index {} out of range for a {}-cell plan",
                    row.plan_index, self.plan_cells
                ),
            });
        }
        if self.rows.contains_key(&row.plan_index) {
            return Err(StoreError::DuplicateCell {
                plan_index: row.plan_index,
            });
        }
        self.rows.insert(row.plan_index, row);
        Ok(())
    }

    /// Merges another store's rows into this one. Both stores must carry
    /// the same plan identity, and the record sets must be disjoint — a
    /// shared plan index is a [`StoreError::DuplicateCell`] and nothing
    /// is merged (the check runs before any row moves).
    pub fn merge(&mut self, other: &ResultStore) -> Result<(), StoreError> {
        other.check_plan(self.plan_cells, self.fingerprint)?;
        if let Some(&plan_index) = other.rows.keys().find(|k| self.rows.contains_key(k)) {
            return Err(StoreError::DuplicateCell { plan_index });
        }
        for row in other.rows.values() {
            self.rows.insert(row.plan_index, row.clone());
        }
        Ok(())
    }

    /// Serializes the complete record set and atomically replaces the
    /// store file with it (see [`write_atomic`]). A no-op for in-memory
    /// stores. The sweep engine calls this every
    /// [`crate::fault::ExecSpec::checkpoint_every`] finished cells and
    /// once at the end of a run.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        sweep_stale_temps(path);
        write_atomic(path, &self.encode())
    }

    /// Encodes header + records (ascending plan index).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.rows.len() * 96);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.plan_cells as u64).to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        for row in self.rows.values() {
            let record = encode_row(row);
            out.extend_from_slice(&(record.len() as u32).to_le_bytes());
            out.extend_from_slice(&record);
        }
        out
    }

    /// Decodes and validates a store file image into `self.rows`.
    fn load(&mut self, bytes: &[u8], path: &Path) -> Result<(), StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8).map_err(&corrupt)?;
        if magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:?}")));
        }
        let version = r.u32().map_err(&corrupt)?;
        if version != VERSION {
            return Err(corrupt(format!(
                "format version {version}, this build reads {VERSION}"
            )));
        }
        let plan_cells = r.usize().map_err(&corrupt)?;
        let fingerprint = r.u64().map_err(&corrupt)?;
        if plan_cells != self.plan_cells || fingerprint != self.fingerprint {
            return Err(StoreError::PlanMismatch {
                path: Some(path.to_path_buf()),
                detail: format!(
                    "file is for {} cells / fingerprint {:#018x}, \
                     plan has {} cells / fingerprint {:#018x}",
                    plan_cells, fingerprint, self.plan_cells, self.fingerprint
                ),
            });
        }
        while !r.done() {
            let len = r.u32().map_err(&corrupt)?;
            let record = r.take(len as usize).map_err(&corrupt)?;
            let row = decode_row(record).map_err(&corrupt)?;
            if row.plan_index >= self.plan_cells {
                return Err(corrupt(format!(
                    "record plan index {} out of range for a {}-cell plan",
                    row.plan_index, self.plan_cells
                )));
            }
            if self.rows.insert(row.plan_index, row).is_some() {
                return Err(corrupt("duplicate plan index in store file".to_string()));
            }
        }
        Ok(())
    }
}

/// Bounded little-endian reader over a byte slice; every failure carries
/// a human-readable detail for [`StoreError::Corrupt`]. Shared with the
/// model cache in [`crate::cache`], which follows the same format
/// discipline.
pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, file has {}",
                self.pos,
                self.bytes.len()
            ));
        };
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// A u64 length/index converted to usize with an overflow check — on
    /// 32-bit targets an oversized value is corruption, not a wrap.
    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("value {v} overflows usize on this target"))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        let len = self.u32()?;
        let len = usize::try_from(len)
            .map_err(|_| format!("string length {len} overflows usize on this target"))?;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("invalid UTF-8 in string field: {e}"))
    }
}

pub(crate) fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Encodes one row in field order. Floats are raw bit patterns, so the
/// round trip is exact — a resumed sweep's CSV is byte-identical.
fn encode_row(row: &ResultRow) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.extend_from_slice(&(row.plan_index as u64).to_le_bytes());
    push_str(&mut out, &row.framework);
    push_str(&mut out, &row.building);
    push_str(&mut out, &row.device);
    push_f64(&mut out, row.env_multiplier);
    push_str(&mut out, &row.attack);
    push_str(&mut out, &row.variant);
    push_str(&mut out, &row.targeting);
    push_f64(&mut out, row.epsilon);
    push_f64(&mut out, row.phi);
    push_f64(&mut out, row.mean_error_m);
    push_f64(&mut out, row.max_error_m);
    out
}

fn decode_row(record: &[u8]) -> Result<ResultRow, String> {
    let mut r = Reader {
        bytes: record,
        pos: 0,
    };
    let row = ResultRow {
        plan_index: r.usize()?,
        framework: r.string()?,
        building: r.string()?,
        device: r.string()?,
        env_multiplier: r.f64()?,
        attack: r.string()?,
        variant: r.string()?,
        targeting: r.string()?,
        epsilon: r.f64()?,
        phi: r.f64()?,
        mean_error_m: r.f64()?,
        max_error_m: r.f64()?,
    };
    if !r.done() {
        return Err(format!(
            "record has {} trailing bytes",
            record.len() - r.pos
        ));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(plan_index: usize, mean: f64) -> ResultRow {
        ResultRow {
            plan_index,
            framework: "CALLOC".into(),
            building: "B1".into(),
            device: "OP3".into(),
            env_multiplier: 1.0,
            attack: "FGSM".into(),
            variant: "manipulation".into(),
            targeting: "strongest".into(),
            epsilon: 0.1,
            phi: 50.0,
            mean_error_m: mean,
            max_error_m: mean * 2.0,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("calloc_store_{}_{name}.bin", std::process::id()))
    }

    #[test]
    fn roundtrips_rows_exactly_through_disk() {
        let path = tmp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let mut store = ResultStore::open(&path, 10, 0xABCD).expect("open fresh");
        // Awkward floats: negative zero and a subnormal must survive the
        // round trip bit for bit.
        let mut special = row(3, 1.5);
        special.mean_error_m = -0.0;
        special.max_error_m = f64::MIN_POSITIVE / 2.0;
        store.insert(special.clone()).unwrap();
        store.insert(row(1, 2.25)).unwrap();
        store.checkpoint().expect("checkpoint");

        let loaded = ResultStore::open(&path, 10, 0xABCD).expect("reopen");
        assert_eq!(loaded.len(), 2);
        let rows: Vec<&ResultRow> = loaded.rows().collect();
        assert_eq!(
            rows[0].plan_index, 1,
            "rows iterate in ascending plan index"
        );
        assert_eq!(rows[1], &special);
        assert_eq!(rows[1].mean_error_m.to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            rows[1].max_error_m.to_bits(),
            (f64::MIN_POSITIVE / 2.0).to_bits()
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_opens_empty() {
        let path = tmp_path("missing");
        let _ = fs::remove_file(&path);
        let store = ResultStore::open(&path, 4, 7).expect("open missing");
        assert!(store.is_empty());
        assert!(!path.exists(), "open must not create the file eagerly");
    }

    #[test]
    fn in_memory_checkpoint_is_a_noop() {
        let mut store = ResultStore::in_memory(4, 7);
        store.insert(row(0, 1.0)).unwrap();
        store.checkpoint().expect("no-op checkpoint");
        assert_eq!(store.len(), 1);
        assert!(store.path().is_none());
    }

    #[test]
    fn duplicate_insert_is_an_error() {
        let mut store = ResultStore::in_memory(4, 7);
        store.insert(row(2, 1.0)).unwrap();
        let err = store.insert(row(2, 9.0)).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateCell { plan_index: 2 }));
        // …and the original row survives (no last-wins).
        assert_eq!(store.get(2).unwrap().mean_error_m, 1.0);
    }

    #[test]
    fn out_of_range_insert_is_a_plan_mismatch() {
        let mut store = ResultStore::in_memory(4, 7);
        let err = store.insert(row(4, 1.0)).unwrap_err();
        assert!(matches!(err, StoreError::PlanMismatch { .. }), "{err}");
    }

    #[test]
    fn merging_empty_and_disjoint_stores_works() {
        let mut a = ResultStore::in_memory(10, 7);
        let empty = ResultStore::in_memory(10, 7);
        a.merge(&empty).expect("empty merge");
        assert!(a.is_empty());

        a.insert(row(0, 1.0)).unwrap();
        a.insert(row(5, 2.0)).unwrap();
        let mut b = ResultStore::in_memory(10, 7);
        b.insert(row(3, 3.0)).unwrap();
        a.merge(&b).expect("disjoint merge");
        let indices: Vec<usize> = a.rows().map(|r| r.plan_index).collect();
        assert_eq!(
            indices,
            vec![0, 3, 5],
            "merged rows in ascending plan index"
        );
    }

    #[test]
    fn overlapping_merge_is_an_error_and_merges_nothing() {
        let mut a = ResultStore::in_memory(10, 7);
        a.insert(row(1, 1.0)).unwrap();
        let mut b = ResultStore::in_memory(10, 7);
        b.insert(row(0, 5.0)).unwrap();
        b.insert(row(1, 9.0)).unwrap();
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateCell { plan_index: 1 }));
        assert_eq!(a.len(), 1, "a failed merge must not partially apply");
        assert_eq!(a.get(1).unwrap().mean_error_m, 1.0);
    }

    #[test]
    fn merge_rejects_a_different_plan() {
        let mut a = ResultStore::in_memory(10, 7);
        let b = ResultStore::in_memory(10, 8);
        assert!(matches!(
            a.merge(&b).unwrap_err(),
            StoreError::PlanMismatch { .. }
        ));
        let c = ResultStore::in_memory(11, 7);
        assert!(matches!(
            a.merge(&c).unwrap_err(),
            StoreError::PlanMismatch { .. }
        ));
    }

    #[test]
    fn open_rejects_a_different_plans_file() {
        let path = tmp_path("mismatch");
        let _ = fs::remove_file(&path);
        let mut store = ResultStore::open(&path, 10, 0xABCD).expect("open fresh");
        store.insert(row(0, 1.0)).unwrap();
        store.checkpoint().expect("checkpoint");
        let err = ResultStore::open(&path, 10, 0xDCBA).unwrap_err();
        assert!(matches!(err, StoreError::PlanMismatch { .. }), "{err}");
        let err = ResultStore::open(&path, 11, 0xABCD).unwrap_err();
        assert!(matches!(err, StoreError::PlanMismatch { .. }), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_garbage_and_truncation() {
        let path = tmp_path("corrupt");
        fs::write(&path, b"not a store").unwrap();
        let err = ResultStore::open(&path, 4, 7).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

        // A valid store truncated mid-record must fail loudly, not load a
        // partial row (the atomic-rename discipline means this can only
        // happen through external corruption).
        let _ = fs::remove_file(&path);
        let mut store = ResultStore::open(&path, 4, 7).expect("open fresh");
        store.insert(row(0, 1.0)).unwrap();
        store.checkpoint().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        let err = ResultStore::open(&path, 4, 7).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn write_atomic_replaces_content_and_cleans_temp() {
        let path = tmp_path("atomic");
        write_atomic(&path, b"first").expect("first write");
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer content").expect("second write");
        assert_eq!(fs::read(&path).unwrap(), b"second, longer content");
        assert!(
            !sibling_tmp(&path).exists(),
            "temp file must be renamed away"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn open_sweeps_stale_temps_from_dead_writers() {
        let path = tmp_path("stale_sweep");
        let _ = fs::remove_file(&path);
        // A writer killed between temp creation and rename leaves this
        // behind (pid 1 is never us).
        let stale = path.with_file_name(format!(
            "{}.1.tmp",
            path.file_name().unwrap().to_str().unwrap()
        ));
        fs::write(&stale, b"half-written checkpoint").unwrap();
        // Our own pid's temp and unrelated siblings must survive.
        let own = sibling_tmp(&path);
        fs::write(&own, b"in flight").unwrap();
        let unrelated = path.with_file_name(format!(
            "{}.notapid.tmp",
            path.file_name().unwrap().to_str().unwrap()
        ));
        fs::write(&unrelated, b"not ours").unwrap();

        let store = ResultStore::open(&path, 4, 7).expect("open");
        assert!(!stale.exists(), "stale other-pid temp must be swept");
        assert!(own.exists(), "own-pid temp must survive");
        assert!(unrelated.exists(), "non-pid-pattern sibling must survive");
        assert!(store.is_empty());

        // checkpoint() sweeps too.
        fs::write(&stale, b"left again").unwrap();
        let mut store = ResultStore::open(&path, 4, 7).expect("reopen");
        assert!(!stale.exists());
        fs::write(&stale, b"and again").unwrap();
        store.insert(row(0, 1.0)).unwrap();
        store.checkpoint().expect("checkpoint");
        assert!(!stale.exists(), "checkpoint must sweep stale temps");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&own);
        let _ = fs::remove_file(&unrelated);
    }

    #[test]
    fn oversized_length_fields_are_corrupt_not_wrapped() {
        // Header with plan_cells = u64::MAX: on every target this must
        // surface as a typed error (PlanMismatch after a checked decode,
        // Corrupt on 32-bit) — never wrap through `as usize`.
        let path = tmp_path("oversized");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&7u64.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = ResultStore::open(&path, 4, 7).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::PlanMismatch { .. } | StoreError::Corrupt { .. }
            ),
            "{err}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn write_atomic_reports_the_offending_path() {
        let path = Path::new("/nonexistent-dir-calloc/test.csv");
        let err = write_atomic(path, b"x").unwrap_err();
        let StoreError::Io { path: p, .. } = &err else {
            panic!("expected Io error, got {err}");
        };
        assert!(p.starts_with("/nonexistent-dir-calloc"), "{err}");
    }

    #[test]
    fn errors_render_with_context() {
        let err = StoreError::DuplicateCell { plan_index: 42 };
        assert!(err.to_string().contains("42"));
        let err = StoreError::PlanMismatch {
            path: None,
            detail: "x".into(),
        };
        assert!(err.to_string().contains("in-memory"));
    }
}
