//! Fault-tolerant execution policy and reporting: retry budgets,
//! checkpoint cadence, deterministic fault injection, and the run
//! summary that surfaces quarantined cells.
//!
//! The sweep engine's failure semantics (see [`crate::sweep`]) are
//! configured by an [`ExecSpec`] and reported through a [`RunReport`].
//! Fault injection is **explicit and deterministic**: a [`FaultPlan`]
//! names exactly which plan indices panic on which attempts — never
//! ambient randomness — so the quarantine/retry/resume machinery is
//! itself testable under the bit-identical determinism contract.

use std::collections::BTreeMap;
use std::fmt;

use crate::report::ResultTable;

/// A deterministic fault-injection schedule: "panic on plan indices
/// {i…}, on the first *k* attempts". Threaded into a run via
/// [`ExecSpec::faults`], never via ambient randomness — the same plan
/// injects the same panics on every run, at every thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// plan index → number of leading attempts that panic.
    panics: BTreeMap<usize, usize>,
}

impl FaultPlan {
    /// An empty plan: no injected faults (the production default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
    }

    /// Builder: the cell at `plan_index` panics on its first
    /// `failing_attempts` attempts (attempt numbers `0..failing_attempts`)
    /// and succeeds from then on. With `failing_attempts` larger than the
    /// retry budget the cell is permanently poisoned and ends up
    /// quarantined as a [`CellError`].
    pub fn panicking(mut self, plan_index: usize, failing_attempts: usize) -> Self {
        if failing_attempts > 0 {
            self.panics.insert(plan_index, failing_attempts);
        }
        self
    }

    /// Bulk constructor: every listed plan index panics on its first
    /// `failing_attempts` attempts.
    pub fn panic_on(plan_indices: &[usize], failing_attempts: usize) -> Self {
        let mut plan = FaultPlan::none();
        for &i in plan_indices {
            plan = plan.panicking(i, failing_attempts);
        }
        plan
    }

    /// Whether the schedule calls for a panic at this cell and attempt.
    pub fn should_panic(&self, plan_index: usize, attempt: usize) -> bool {
        self.panics
            .get(&plan_index)
            .is_some_and(|&failing| attempt < failing)
    }

    /// Panics with a recognizable `injected fault` payload if the
    /// schedule calls for it; the sweep engine invokes this at the top
    /// of every cell attempt.
    pub fn maybe_panic(&self, plan_index: usize, attempt: usize) {
        if self.should_panic(plan_index, attempt) {
            panic!("injected fault: plan index {plan_index}, attempt {attempt}");
        }
    }
}

/// Execution policy for a fault-tolerant sweep run. The default is
/// maximally boring — no retries, no injected faults, checkpoint every
/// 64 cells — so plain runs behave exactly like [`crate::SweepPlan::run`]
/// plus crash-safety.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecSpec {
    /// How many times a panicking cell is re-attempted before it is
    /// quarantined. `0` means a single attempt, no retries. Retries are
    /// deterministic: the cell re-runs with identical inputs and seed,
    /// so a successful retry produces the exact row a clean run would.
    pub retries: usize,
    /// Checkpoint the result store after this many newly finished cells
    /// (plus once at the end of every run). `0` disables mid-run
    /// checkpoints entirely: the store is written exactly once, at run
    /// finish, so the file jumps from its previous complete checkpoint
    /// straight to the full results in one atomic rename (and a kill
    /// mid-run loses every row of that run — the trade for minimum I/O).
    /// See [`checkpoint_due`] for the decision rule. Irrelevant for
    /// in-memory stores.
    pub checkpoint_every: usize,
    /// Deterministic fault-injection schedule (empty in production).
    pub faults: FaultPlan,
}

impl Default for ExecSpec {
    fn default() -> Self {
        ExecSpec {
            retries: 0,
            checkpoint_every: 64,
            faults: FaultPlan::none(),
        }
    }
}

impl ExecSpec {
    /// Builder: set the retry budget.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Builder: set the checkpoint cadence (`0` = only at run end).
    pub fn with_checkpoint_every(mut self, cells: usize) -> Self {
        self.checkpoint_every = cells;
        self
    }

    /// Builder: install a fault-injection schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Total attempts a cell may consume: one initial try plus
    /// [`retries`](Self::retries).
    pub fn max_attempts(&self) -> usize {
        self.retries + 1
    }
}

/// The mid-run checkpoint decision rule: whether a checkpoint is due
/// after `since_checkpoint` cells have finished since the last one, under
/// an [`ExecSpec::checkpoint_every`] cadence of `cadence`.
///
/// This pins the `cadence == 0` contract: zero never makes a mid-run
/// checkpoint due — not even after thousands of cells — so a cadence-0
/// run writes its store exactly once, at run finish. For a positive
/// cadence the checkpoint fires on the `cadence`-th newly finished cell
/// and the counter resets.
pub fn checkpoint_due(cadence: usize, since_checkpoint: usize) -> bool {
    cadence > 0 && since_checkpoint >= cadence
}

/// A cell that panicked on every attempt and was quarantined instead of
/// killing the sweep. The cell's row is absent from the run's table and
/// store, so a later resume re-executes exactly these cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Plan index of the poisoned cell.
    pub plan_index: usize,
    /// Attempts consumed (always the run's [`ExecSpec::max_attempts`]).
    pub attempts: usize,
    /// The panic payload's message, as captured by the quarantine
    /// boundary.
    pub payload: String,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} failed after {} attempt(s): {}",
            self.plan_index, self.attempts, self.payload
        )
    }
}

/// Outcome of a fault-tolerant sweep run: the merged result table plus
/// an explicit account of what executed, what recovered after retries,
/// and what was quarantined. Failures are surfaced here — never
/// silently dropped.
#[derive(Debug)]
pub struct RunReport {
    /// Rows of every finished cell, merged in ascending plan index. For
    /// store-backed runs this includes rows restored from earlier
    /// (crashed or sharded) runs, not just this run's.
    pub table: ResultTable,
    /// Quarantined cells, ascending by plan index. Empty on a clean run.
    pub errors: Vec<CellError>,
    /// Cells actually executed by this run (missing from the store at
    /// entry), including ones that ultimately failed.
    pub executed: usize,
    /// Cells that panicked at least once but succeeded within the retry
    /// budget.
    pub recovered: usize,
}

impl RunReport {
    /// Whether every cell of the plan (shard) now has a row.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }

    /// One-line human-readable account of the run, quarantined plan
    /// indices included.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} rows, {} cells executed, {} recovered after retry",
            self.table.len(),
            self.executed,
            self.recovered
        );
        if self.errors.is_empty() {
            s.push_str(", no failures");
        } else {
            let indices: Vec<String> = self
                .errors
                .iter()
                .map(|e| e.plan_index.to_string())
                .collect();
            s.push_str(&format!(
                ", {} quarantined (plan indices {})",
                self.errors.len(),
                indices.join(", ")
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_schedules_leading_attempts() {
        let plan = FaultPlan::none().panicking(3, 2);
        assert!(plan.should_panic(3, 0));
        assert!(plan.should_panic(3, 1));
        assert!(!plan.should_panic(3, 2));
        assert!(!plan.should_panic(4, 0));
        assert!(FaultPlan::none().is_empty());
        // Zero failing attempts is a no-op, not an entry.
        assert!(FaultPlan::none().panicking(1, 0).is_empty());
    }

    #[test]
    fn panic_on_covers_every_listed_index() {
        let plan = FaultPlan::panic_on(&[1, 4], 1);
        assert!(plan.should_panic(1, 0));
        assert!(plan.should_panic(4, 0));
        assert!(!plan.should_panic(1, 1));
        assert!(!plan.should_panic(2, 0));
    }

    #[test]
    fn maybe_panic_fires_with_recognizable_payload() {
        let plan = FaultPlan::none().panicking(7, 1);
        let err = calloc_tensor::par::caught(|| plan.maybe_panic(7, 0)).unwrap_err();
        assert!(err.message().contains("injected fault"), "{err}");
        assert!(err.message().contains("plan index 7"), "{err}");
        calloc_tensor::par::caught(|| plan.maybe_panic(7, 1)).expect("past the schedule");
    }

    #[test]
    fn exec_spec_defaults_are_inert() {
        let spec = ExecSpec::default();
        assert_eq!(spec.retries, 0);
        assert_eq!(spec.max_attempts(), 1);
        assert!(spec.faults.is_empty());
        let spec = spec.with_retries(2).with_checkpoint_every(5);
        assert_eq!(spec.max_attempts(), 3);
        assert_eq!(spec.checkpoint_every, 5);
    }

    #[test]
    fn cadence_zero_never_makes_a_mid_run_checkpoint_due() {
        for since in [0usize, 1, 2, 63, 64, 65, 10_000, usize::MAX] {
            assert!(!checkpoint_due(0, since), "since_checkpoint = {since}");
        }
    }

    #[test]
    fn positive_cadence_fires_on_the_cadence_boundary() {
        assert!(!checkpoint_due(64, 0));
        assert!(!checkpoint_due(64, 63));
        assert!(checkpoint_due(64, 64));
        assert!(checkpoint_due(64, 65), "late counters still fire");
        assert!(checkpoint_due(1, 1), "cadence 1 checkpoints every cell");
    }

    #[test]
    fn run_report_summary_names_quarantined_cells() {
        let report = RunReport {
            table: ResultTable::new(),
            errors: vec![CellError {
                plan_index: 9,
                attempts: 2,
                payload: "injected fault: plan index 9, attempt 1".into(),
            }],
            executed: 4,
            recovered: 1,
        };
        assert!(!report.is_complete());
        let summary = report.summary();
        assert!(summary.contains("1 quarantined"), "{summary}");
        assert!(summary.contains("9"), "{summary}");

        let clean = RunReport {
            table: ResultTable::new(),
            errors: vec![],
            executed: 0,
            recovered: 0,
        };
        assert!(clean.is_complete());
        assert!(clean.summary().contains("no failures"));
    }
}
