//! # calloc-eval
//!
//! The evaluation harness that regenerates the CALLOC paper's experiments:
//! localization-error metrics, a framework suite trainer, attack
//! application (white-box or surrogate-transfer) and plain-text reporting
//! (ASCII heatmaps, CSV, markdown tables).
//!
//! The harness operates on the [`calloc_nn::Localizer`] contract, so the
//! same experiment code runs CALLOC, every baseline and any future model.
//!
//! # Example: evaluate a model under attack
//!
//! ```
//! use calloc_attack::AttackConfig;
//! use calloc_baselines::KnnLocalizer;
//! use calloc_eval::{evaluate, Evaluation};
//! use calloc_sim::{Building, BuildingId, CollectionConfig, Scenario};
//!
//! let building = Building::generate(BuildingId::B3.spec(), 1);
//! let scenario = Scenario::generate(&building, &CollectionConfig::small(), 7);
//! let knn = KnnLocalizer::fit(
//!     scenario.train.x.clone(),
//!     scenario.train.labels.clone(),
//!     scenario.train.num_classes(),
//!     3,
//! );
//! let soft = knn.to_soft(0.05); // white-box surrogate for the attack
//! let test = &scenario.test_per_device[0].1;
//! let clean = evaluate(&knn, test, None, None);
//! let attacked = evaluate(&knn, test, Some(&AttackConfig::fgsm(0.3, 100.0)), Some(&soft));
//! assert!(attacked.summary.mean >= clean.summary.mean * 0.8);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod fault;
mod metrics;
mod report;
pub mod store;
mod suite;
pub mod sweep;

pub use cache::ModelCache;
pub use fault::{checkpoint_due, CellError, ExecSpec, FaultPlan, RunReport};
pub use metrics::{attacked_inputs, evaluate, evaluate_mitm, AttackedInputs, Evaluation};
pub use report::{ascii_heatmap, csv_table, markdown_table, ResultRow, ResultTable};
pub use store::{write_atomic, ResultStore, StoreError};
pub use suite::{Suite, SuiteMember, SuiteProfile};
pub use sweep::{run_env_sweep, run_sweep, AttackCell, SweepCell, SweepPlan, SweepSpec};

// Re-export what experiment binaries usually need alongside the harness.
pub use calloc_nn::{DifferentiableModel, Localizer};
