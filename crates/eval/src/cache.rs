//! Content-addressed trained-model cache: train each `(member config,
//! scenario cell)` pair once across figures and sweeps.
//!
//! Every figure binary and sweep retrains the framework suite from
//! scratch, even when two experiments share a scenario cell bit for bit
//! (same building realization, collection protocol and seed). Training is
//! deterministic — a fixed `(member config, collected data)` pair always
//! produces the same model, bit-identically, at every thread count — so a
//! trained model is a pure function of its inputs and can be cached by
//! *content address*:
//!
//! ```text
//! key = "<member name> v<codec> config=<canonical config>
//!        @ <collection identity>"
//! ```
//!
//! * The **member half** is built by `Suite`'s key helpers from the
//!   *resolved* training configuration, encoded with Rust's `{:?}` (which
//!   round-trips `f64` exactly, so distinct hyper-parameters never
//!   collide by formatting) plus a per-member codec version that must be
//!   bumped whenever training semantics or the state encoding change.
//! * The **cell half** is [`calloc_sim::collection_identity`]: the
//!   resolved `(building spec, salt, collection config, seed)` quadruple
//!   that scenario generation is a pure function of.
//!
//! Two cache users computing the same key are therefore guaranteed — not
//! assumed — to want the same model, and a warm cache restores it
//! bit-identically via the [`calloc_nn::state`] codec (raw `f64` bit
//! patterns; `tests/model_cache.rs` pins hits-indistinguishable-from-
//! fresh-trains end to end).
//!
//! The persistence discipline is [`crate::store`]'s: a fixed header
//! (magic, format version, key-scheme fingerprint), length-prefixed
//! records, [`write_atomic`] checkpoints (the visible file is always a
//! complete, decodable cache), stale-temp sweeping, typed
//! [`StoreError`]s, and strict overlap-is-an-error
//! [`merge`](ModelCache::merge) semantics. Records are keyed by the FNV
//! fingerprint of their full key string *and* carry the key itself, so a
//! fingerprint collision is detected (and treated as corruption) instead
//! of silently serving the wrong model.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use calloc::CallocModel;
use calloc_baselines::{
    AdvLocLocalizer, AnvilLocalizer, DnnLocalizer, GpcLocalizer, KnnLocalizer, SangriaLocalizer,
    WiDeepLocalizer,
};
use calloc_nn::state::{self, StateReader, StateWriter};
use calloc_nn::{Localizer, Sequential};

use crate::store::{push_str, sweep_stale_temps, write_atomic, Reader, StoreError};
use crate::sweep::Fnv;

/// Magic bytes leading every model-cache file.
const MAGIC: &[u8; 8] = b"CALLOCMC";
/// On-disk format version.
const VERSION: u32 = 1;
/// The key scheme the header fingerprint pins: bump whenever the key
/// construction rules change incompatibly (member key helpers,
/// [`calloc_sim::collection_identity`], or the state codecs), so stale
/// caches are rejected instead of silently serving models trained under
/// the old rules.
const KEY_SCHEME: &str = "calloc model cache key scheme v1";

/// FNV-1a fingerprint of the key scheme — the header identity every cache
/// file must carry.
fn scheme_fingerprint() -> u64 {
    let mut fnv = Fnv::new();
    fnv.str(KEY_SCHEME);
    fnv.finish()
}

/// FNV-1a fingerprint of one full cache key.
fn key_fingerprint(key: &str) -> u64 {
    let mut fnv = Fnv::new();
    fnv.str(key);
    fnv.finish()
}

/// One cached model: the member name (the decode dispatch tag) plus the
/// opaque [`calloc_nn::state`] bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheEntry {
    name: String,
    bytes: Vec<u8>,
}

/// A key-addressed set of trained-model states, optionally mirrored to a
/// crash-safe cache file. See the [module docs](self) for the keying and
/// persistence contracts.
#[derive(Debug)]
pub struct ModelCache {
    path: Option<PathBuf>,
    entries: BTreeMap<String, CacheEntry>,
    hits: u64,
    misses: u64,
}

impl ModelCache {
    /// An empty in-memory cache. Checkpoints are no-ops.
    pub fn in_memory() -> Self {
        ModelCache {
            path: None,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Opens (or creates) the cache file at `path`. An existing file is
    /// decoded and validated: a header carrying a different key-scheme
    /// fingerprint is a [`StoreError::PlanMismatch`] (the cache was
    /// written under incompatible keying rules); an undecodable file is
    /// [`StoreError::Corrupt`]. A missing file yields an empty cache
    /// (created on the first [`checkpoint`](Self::checkpoint)). Stale
    /// `*.<pid>.tmp` siblings left by a previously killed writer are
    /// swept away, exactly as [`crate::ResultStore::open`] does.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut cache = ModelCache {
            path: Some(path.to_path_buf()),
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        };
        sweep_stale_temps(path);
        match fs::read(path) {
            Ok(bytes) => {
                cache.load(&bytes, path)?;
                Ok(cache)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(cache),
            Err(source) => Err(StoreError::Io {
                path: path.to_path_buf(),
                source,
            }),
        }
    }

    /// The cache file path (`None` for an in-memory cache).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of cached models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a key has a cached model (does not touch the counters).
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of [`get`](Self::get) calls that found a cached model.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of [`get`](Self::get) calls that found nothing — each one
    /// corresponds to a training the cache could not save.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cached state bytes of a key, if any. Every call counts as one
    /// hit or one miss — `tests/model_cache.rs` asserts exactly-once
    /// training through these counters.
    pub fn get(&mut self, key: &str) -> Option<&[u8]> {
        match self.entries.get(key) {
            Some(entry) => {
                self.hits += 1;
                Some(&entry.bytes)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a trained model's state under `key`. Strict: a key can be
    /// recorded once, ever — a duplicate is a
    /// [`StoreError::DuplicateModel`], never a silent overwrite (two
    /// writers producing different bytes for one key would mean the
    /// keying contract is broken, and last-wins would hide it). The
    /// record is in-memory until the next
    /// [`checkpoint`](Self::checkpoint).
    pub fn insert(&mut self, key: &str, name: &str, bytes: Vec<u8>) -> Result<(), StoreError> {
        if self.entries.contains_key(key) {
            return Err(StoreError::DuplicateModel {
                key: key.to_string(),
            });
        }
        self.entries.insert(
            key.to_string(),
            CacheEntry {
                name: name.to_string(),
                bytes,
            },
        );
        Ok(())
    }

    /// Merges another cache's models into this one. The key sets must be
    /// disjoint — a shared key is a [`StoreError::DuplicateModel`] and
    /// nothing is merged (the check runs before any entry moves).
    pub fn merge(&mut self, other: &ModelCache) -> Result<(), StoreError> {
        if let Some(key) = other.entries.keys().find(|k| self.entries.contains_key(*k)) {
            return Err(StoreError::DuplicateModel { key: key.clone() });
        }
        for (key, entry) in &other.entries {
            self.entries.insert(key.clone(), entry.clone());
        }
        Ok(())
    }

    /// Serializes the complete cache and atomically replaces the cache
    /// file with it (see [`write_atomic`]). A no-op for in-memory caches.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        sweep_stale_temps(path);
        write_atomic(path, &self.encode())
    }

    /// A cached model decoded through the per-member state codec, or
    /// `None` (counted as a miss) when the key is absent.
    ///
    /// # Errors
    ///
    /// Fails with [`StoreError::Corrupt`] if the cached entry was
    /// recorded under a different member name or its bytes do not decode
    /// — either means the file does not honor the keying contract.
    pub fn get_member(
        &mut self,
        key: &str,
        name: &str,
    ) -> Result<Option<Box<dyn Localizer>>, StoreError> {
        let path = self.corrupt_path();
        let Some(entry) = self.entries.get(key) else {
            self.misses += 1;
            return Ok(None);
        };
        if entry.name != name {
            return Err(StoreError::Corrupt {
                path,
                detail: format!(
                    "cache key {key:?} holds a {:?} model, caller wants {name:?}",
                    entry.name
                ),
            });
        }
        let model = decode_member(name, &entry.bytes).map_err(|detail| StoreError::Corrupt {
            path,
            detail: format!("cached {name} model under key {key:?}: {detail}"),
        })?;
        self.hits += 1;
        Ok(Some(model))
    }

    /// Records a trained member's state (via
    /// [`calloc_nn::Localizer::state`]). Returns `false` without
    /// recording anything when the model does not expose a state encoding
    /// — such members simply retrain every run.
    ///
    /// # Errors
    ///
    /// Fails with [`StoreError::DuplicateModel`] on a duplicate key.
    pub fn insert_member(
        &mut self,
        key: &str,
        name: &str,
        model: &dyn Localizer,
    ) -> Result<bool, StoreError> {
        match model.state() {
            Some(bytes) => {
                self.insert(key, name, bytes)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Fetch-or-train: the cached model for `key` if present, otherwise
    /// `train()`'s result, recorded under `key` (when the model exposes a
    /// state encoding) — the serial single-model analogue of
    /// `Suite::train_cached`.
    ///
    /// # Errors
    ///
    /// Propagates the decode and duplicate-key errors of
    /// [`get_member`](Self::get_member) and
    /// [`insert_member`](Self::insert_member).
    pub fn member(
        &mut self,
        key: &str,
        name: &str,
        train: impl FnOnce() -> Box<dyn Localizer>,
    ) -> Result<Box<dyn Localizer>, StoreError> {
        if let Some(model) = self.get_member(key, name)? {
            return Ok(model);
        }
        let model = train();
        self.insert_member(key, name, model.as_ref())?;
        Ok(model)
    }

    /// Typed fetch-or-train for CALLOC itself — the figure binaries that
    /// train the model directly (Figs. 4/5, ablations) need the concrete
    /// [`CallocModel`], not a boxed [`Localizer`].
    ///
    /// # Errors
    ///
    /// As [`member`](Self::member).
    pub fn calloc(
        &mut self,
        key: &str,
        train: impl FnOnce() -> CallocModel,
    ) -> Result<CallocModel, StoreError> {
        let path = self.corrupt_path();
        if let Some(entry) = self.entries.get(key) {
            let model =
                CallocModel::from_state(&entry.bytes).map_err(|detail| StoreError::Corrupt {
                    path,
                    detail: format!("cached CALLOC model under key {key:?}: {detail}"),
                })?;
            self.hits += 1;
            return Ok(model);
        }
        self.misses += 1;
        let model = train();
        self.insert(key, "CALLOC", model.state_bytes())?;
        Ok(model)
    }

    /// The cached transfer-attack surrogate network for `key`, or `None`
    /// (counted as a miss) when absent.
    ///
    /// # Errors
    ///
    /// Fails with [`StoreError::Corrupt`] when the cached bytes do not
    /// decode as a [`Sequential`].
    pub fn get_surrogate(&mut self, key: &str) -> Result<Option<Sequential>, StoreError> {
        let path = self.corrupt_path();
        let Some(entry) = self.entries.get(key) else {
            self.misses += 1;
            return Ok(None);
        };
        let mut r = StateReader::new(&entry.bytes);
        let net = state::read_sequential(&mut r)
            .and_then(|net| r.finish().map(|()| net))
            .map_err(|detail| StoreError::Corrupt {
                path,
                detail: format!("cached surrogate under key {key:?}: {detail}"),
            })?;
        self.hits += 1;
        Ok(Some(net))
    }

    /// Records a trained surrogate network.
    ///
    /// # Errors
    ///
    /// Fails with [`StoreError::DuplicateModel`] on a duplicate key.
    pub fn insert_surrogate(&mut self, key: &str, net: &Sequential) -> Result<(), StoreError> {
        let mut w = StateWriter::new();
        state::write_sequential(&mut w, net);
        self.insert(key, "surrogate", w.into_bytes())
    }

    /// The path to blame in [`StoreError::Corrupt`] errors.
    fn corrupt_path(&self) -> PathBuf {
        self.path
            .clone()
            .unwrap_or_else(|| PathBuf::from("<in-memory model cache>"))
    }

    /// Encodes header + records (ascending key order, so the encoding is
    /// deterministic and a checkpoint after identical inserts is
    /// byte-identical).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.entries.len() * 256);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&scheme_fingerprint().to_le_bytes());
        for (key, entry) in &self.entries {
            let mut record = Vec::with_capacity(32 + key.len() + entry.bytes.len());
            record.extend_from_slice(&key_fingerprint(key).to_le_bytes());
            push_str(&mut record, key);
            push_str(&mut record, &entry.name);
            record.extend_from_slice(&(entry.bytes.len() as u32).to_le_bytes());
            record.extend_from_slice(&entry.bytes);
            out.extend_from_slice(&(record.len() as u32).to_le_bytes());
            out.extend_from_slice(&record);
        }
        out
    }

    /// Decodes and validates a cache file image into `self.entries`.
    fn load(&mut self, bytes: &[u8], path: &Path) -> Result<(), StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8).map_err(&corrupt)?;
        if magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:?}")));
        }
        let version = r.u32().map_err(&corrupt)?;
        if version != VERSION {
            return Err(corrupt(format!(
                "format version {version}, this build reads {VERSION}"
            )));
        }
        let scheme = r.u64().map_err(&corrupt)?;
        if scheme != scheme_fingerprint() {
            return Err(StoreError::PlanMismatch {
                path: Some(path.to_path_buf()),
                detail: format!(
                    "cache keyed under scheme {scheme:#018x}, this build uses {:#018x} \
                     ({KEY_SCHEME:?})",
                    scheme_fingerprint()
                ),
            });
        }
        while !r.done() {
            let len = r.u32().map_err(&corrupt)?;
            let record = r.take(len as usize).map_err(&corrupt)?;
            let mut rec = Reader {
                bytes: record,
                pos: 0,
            };
            let fp = rec.u64().map_err(&corrupt)?;
            let key = rec.string().map_err(&corrupt)?;
            if fp != key_fingerprint(&key) {
                return Err(corrupt(format!(
                    "record fingerprint {fp:#018x} does not match its key {key:?}"
                )));
            }
            let name = rec.string().map_err(&corrupt)?;
            let blen = rec.u32().map_err(&corrupt)?;
            let model_bytes = rec.take(blen as usize).map_err(&corrupt)?.to_vec();
            if !rec.done() {
                return Err(corrupt(format!(
                    "record for key {key:?} has {} trailing bytes",
                    record.len() - rec.pos
                )));
            }
            if self
                .entries
                .insert(
                    key.clone(),
                    CacheEntry {
                        name,
                        bytes: model_bytes,
                    },
                )
                .is_some()
            {
                return Err(corrupt(format!("duplicate key {key:?} in cache file")));
            }
        }
        Ok(())
    }
}

/// Decodes a cached member state through the codec its name dispatches
/// to — the inverse of [`calloc_nn::Localizer::state`] for every suite
/// member.
pub(crate) fn decode_member(name: &str, bytes: &[u8]) -> Result<Box<dyn Localizer>, String> {
    Ok(match name {
        // NC is CALLOC trained without the curriculum: same architecture,
        // same codec.
        "CALLOC" | "NC" => Box::new(CallocModel::from_state(bytes)?),
        "AdvLoc" => Box::new(AdvLocLocalizer::from_state(bytes)?),
        "SANGRIA" => Box::new(SangriaLocalizer::from_state(bytes)?),
        "ANVIL" => Box::new(AnvilLocalizer::from_state(bytes)?),
        "WiDeep" => Box::new(WiDeepLocalizer::from_state(bytes)?),
        "KNN" => Box::new(KnnLocalizer::from_state(bytes)?),
        "GPC" => Box::new(GpcLocalizer::from_state(bytes)?),
        "DNN" => Box::new(DnnLocalizer::from_state(bytes)?),
        other => return Err(format!("unknown member name {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("calloc_cache_{}_{name}.bin", std::process::id()))
    }

    #[test]
    fn roundtrips_entries_exactly_through_disk() {
        let path = tmp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let mut cache = ModelCache::open(&path).expect("open fresh");
        let bytes = vec![1u8, 2, 3, 255, 0, 42];
        cache
            .insert("KNN v1 k=3 @ cell A", "KNN", bytes.clone())
            .unwrap();
        cache.insert("KNN v1 k=3 @ cell B", "KNN", vec![]).unwrap();
        cache.checkpoint().expect("checkpoint");

        let mut loaded = ModelCache::open(&path).expect("reopen");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get("KNN v1 k=3 @ cell A"), Some(bytes.as_slice()));
        assert_eq!(loaded.get("KNN v1 k=3 @ cell B"), Some(&[] as &[u8]));
        assert_eq!(loaded.get("KNN v1 k=3 @ cell C"), None);
        assert_eq!((loaded.hits(), loaded.misses()), (2, 1));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_opens_empty_and_in_memory_checkpoint_is_noop() {
        let path = tmp_path("missing");
        let _ = fs::remove_file(&path);
        let cache = ModelCache::open(&path).expect("open missing");
        assert!(cache.is_empty());
        assert!(!path.exists(), "open must not create the file eagerly");

        let mut mem = ModelCache::in_memory();
        mem.insert("k", "KNN", vec![1]).unwrap();
        mem.checkpoint().expect("no-op checkpoint");
        assert!(mem.path().is_none());
    }

    #[test]
    fn duplicate_insert_and_overlapping_merge_are_errors() {
        let mut a = ModelCache::in_memory();
        a.insert("k1", "KNN", vec![1]).unwrap();
        let err = a.insert("k1", "KNN", vec![2]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateModel { .. }), "{err}");
        assert_eq!(a.get("k1"), Some(&[1u8] as &[u8]), "no last-wins");

        let mut b = ModelCache::in_memory();
        b.insert("k1", "KNN", vec![9]).unwrap();
        b.insert("k2", "KNN", vec![3]).unwrap();
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateModel { .. }), "{err}");
        assert_eq!(a.len(), 1, "a failed merge must not partially apply");

        let mut c = ModelCache::in_memory();
        c.insert("k2", "KNN", vec![3]).unwrap();
        a.merge(&c).expect("disjoint merge");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn open_rejects_garbage_truncation_and_tampered_keys() {
        let path = tmp_path("corrupt");
        fs::write(&path, b"not a cache").unwrap();
        let err = ModelCache::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

        let _ = fs::remove_file(&path);
        let mut cache = ModelCache::open(&path).expect("open fresh");
        cache.insert("some key", "KNN", vec![7; 40]).unwrap();
        cache.checkpoint().unwrap();
        let good = fs::read(&path).unwrap();

        let mut truncated = good.clone();
        truncated.truncate(good.len() - 5);
        fs::write(&path, &truncated).unwrap();
        let err = ModelCache::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

        // Flip a byte inside the key: the record fingerprint no longer
        // matches, so the tampering is detected.
        let mut tampered = good.clone();
        let key_pos = good
            .windows(8)
            .position(|w| w == b"some key")
            .expect("key bytes present");
        tampered[key_pos] ^= 0x20;
        fs::write(&path, &tampered).unwrap();
        let err = ModelCache::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_a_different_key_scheme() {
        let path = tmp_path("scheme");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = ModelCache::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::PlanMismatch { .. }), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn open_sweeps_stale_temps_from_dead_writers() {
        let path = tmp_path("stale");
        let _ = fs::remove_file(&path);
        let stale = path.with_file_name(format!(
            "{}.1.tmp",
            path.file_name().unwrap().to_str().unwrap()
        ));
        fs::write(&stale, b"half-written checkpoint").unwrap();
        let cache = ModelCache::open(&path).expect("open");
        assert!(!stale.exists(), "stale other-pid temp must be swept");
        assert!(cache.is_empty());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn member_name_mismatch_is_corrupt() {
        let mut cache = ModelCache::in_memory();
        cache.insert("k", "KNN", vec![1]).unwrap();
        let Err(err) = cache.get_member("k", "GPC") else {
            panic!("name mismatch must error");
        };
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn unknown_member_name_is_an_error() {
        assert!(decode_member("Mystery", &[]).is_err());
    }
}
