//! Plain-text reporting: result tables, CSV, markdown and ASCII heatmaps.
//!
//! # Merge semantics
//!
//! A [`ResultTable`] is a flat, ordered row list; [`ResultTable::extend`]
//! appends in call order and never inspects plan indices — it is the
//! figure binaries' "stack one building's table under another" helper,
//! not a dedup. The plan-index discipline (rows in ascending plan index,
//! each index at most once) is owned by the producers: the sweep engine
//! merges its fan-out in plan-index order, and the resumable store
//! ([`crate::store::ResultStore`]) keys rows by plan index, rejecting
//! duplicates as errors rather than silently keeping either side. Tables
//! assembled through either path are bit-identical to a clean one-shot
//! run; tables hand-built through [`ResultTable::push`]/`extend` carry
//! whatever order the caller chose.
//!
//! CSV is written crash-safely via [`ResultTable::write_csv`] (sibling
//! temp file + atomic rename).

use std::fmt::Write as _;

/// One experiment cell: a (framework, condition) measurement.
///
/// `plan_index` is the row's position in the [`crate::SweepPlan`] that
/// produced it (see the plan-index merge contract in the module docs of
/// [`crate::sweep`]): rows are merged in ascending plan index, so a table
/// produced by the sweep engine is bit-identical for every thread count.
/// Hand-built tables may number rows however they like (typically `0..n`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Stable index of this cell in the sweep plan that produced it.
    pub plan_index: usize,
    /// Framework name (e.g. "CALLOC").
    pub framework: String,
    /// Building name (e.g. "Building 1"), or empty if aggregated.
    pub building: String,
    /// Device acronym, or empty if aggregated.
    pub device: String,
    /// Environment drift multiplier the row's dataset was collected under
    /// (`1.0` = the baseline environment; see
    /// `calloc_sim::EnvLevel::uniform` and
    /// [`crate::SweepSpec`]`::env_multipliers`). Serialized as the
    /// `env_mult` CSV column **only when some row actually swept the
    /// axis** — tables whose every row is baseline keep the historical
    /// 11-column layout, so pre-axis golden CSVs stay byte-identical.
    pub env_multiplier: f64,
    /// Attack name ("FGSM"/"PGD"/"MIM"), or "none".
    pub attack: String,
    /// MITM injection mechanism ("manipulation"/"spoofing"), or empty for
    /// clean rows.
    pub variant: String,
    /// AP targeting strategy ("strongest"/"random"/"weakest"), or empty
    /// for clean rows.
    pub targeting: String,
    /// Attack strength ε (paper units).
    pub epsilon: f64,
    /// Targeted-AP percentage ø.
    pub phi: f64,
    /// Mean localization error in meters.
    pub mean_error_m: f64,
    /// Worst-case localization error in meters.
    pub max_error_m: f64,
}

impl ResultRow {
    /// A clean (no attack) row — attack "none", empty variant/targeting,
    /// zero ε/ø. Sweep-engine counterpart of the attack cells.
    pub fn clean(
        plan_index: usize,
        framework: &str,
        building: &str,
        device: &str,
        mean_error_m: f64,
        max_error_m: f64,
    ) -> Self {
        ResultRow {
            plan_index,
            framework: framework.into(),
            building: building.into(),
            device: device.into(),
            env_multiplier: 1.0,
            attack: "none".into(),
            variant: String::new(),
            targeting: String::new(),
            epsilon: 0.0,
            phi: 0.0,
            mean_error_m,
            max_error_m,
        }
    }

    /// Returns a copy with the given environment drift multiplier.
    pub fn with_env_multiplier(mut self, env_multiplier: f64) -> Self {
        self.env_multiplier = env_multiplier;
        self
    }
}

/// A flat collection of experiment results with export helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultTable {
    rows: Vec<ResultRow>,
    /// Whether this table was produced with a swept environment axis (set
    /// by the sweep engine when `SweepSpec::env_multipliers` is not the
    /// baseline singleton). The flag makes the CSV schema **sticky**:
    /// slices of an environment-swept table keep the `env_mult` column
    /// even when every surviving row happens to be baseline.
    env_swept: bool,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ResultTable::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: ResultRow) {
        self.rows.push(row);
    }

    /// Moves every row of `other` into this table (in order) — how the
    /// figure binaries merge one sweep table per building into a single
    /// report without cloning rows. A swept environment axis on either
    /// side marks the merged table as swept.
    pub fn extend(&mut self, other: ResultTable) {
        self.rows.extend(other.rows);
        self.env_swept |= other.env_swept;
    }

    /// Marks this table as produced under a swept environment axis, so
    /// [`to_csv`](Self::to_csv) emits the `env_mult` column regardless of
    /// the surviving row values — see [`env_swept`](Self::env_swept).
    pub fn mark_env_swept(&mut self) {
        self.env_swept = true;
    }

    /// Whether this table (or any table merged into it) was produced with
    /// a swept environment axis. Preserved by
    /// [`filtered`](Self::filtered), so slices serialize with the same
    /// schema as their parent.
    pub fn env_swept(&self) -> bool {
        self.env_swept
    }

    /// Borrow all rows.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows at all.
    ///
    /// [`mean_where`](Self::mean_where) and
    /// [`max_where`](Self::max_where) return `None` both for an empty
    /// table and for a filter that matched nothing; callers that need to
    /// tell those apart check this first.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows of one framework.
    pub fn for_framework(&self, name: &str) -> Vec<&ResultRow> {
        self.rows.iter().filter(|r| r.framework == name).collect()
    }

    /// A new table holding clones of the rows matching `pred` (plan
    /// indices and the environment-axis flag are preserved, so both
    /// provenance and the CSV schema survive slicing).
    pub fn filtered(&self, pred: impl Fn(&ResultRow) -> bool) -> ResultTable {
        ResultTable {
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
            env_swept: self.env_swept,
        }
    }

    /// Mean of `mean_error_m` over the rows matching `pred`.
    ///
    /// Returns `None` when no row matches — which happens both when the
    /// table is empty and when the filter simply matched nothing. The two
    /// cases are indistinguishable from the return value alone **by
    /// design** (an aggregate over zero rows does not exist either way);
    /// use [`is_empty`](Self::is_empty) / [`len`](Self::len) when "no
    /// data at all" must be told apart from "no matching condition".
    pub fn mean_where(&self, pred: impl Fn(&ResultRow) -> bool) -> Option<f64> {
        let matched: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.mean_error_m)
            .collect();
        if matched.is_empty() {
            None
        } else {
            Some(calloc_tensor::stats::mean(&matched))
        }
    }

    /// Maximum of `max_error_m` over the rows matching `pred`.
    ///
    /// `None` when no row matches, with the same empty-table /
    /// nothing-matched ambiguity as [`mean_where`](Self::mean_where) —
    /// check [`is_empty`](Self::is_empty) to distinguish them.
    pub fn max_where(&self, pred: impl Fn(&ResultRow) -> bool) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.max_error_m)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Pivots the table into a `row_labels` × `col_labels` matrix of
    /// `mean_error_m` averages: cell `(r, c)` is
    /// [`mean_where`](Self::mean_where) over the rows whose `row_of` /
    /// `col_of` keys equal the respective labels (`NaN` when no row
    /// matches). [`markdown_table`] and [`ascii_heatmap`] render the
    /// result, so every figure view derives from the same table.
    pub fn pivot_mean(
        &self,
        row_labels: &[String],
        col_labels: &[String],
        row_of: impl Fn(&ResultRow) -> &str,
        col_of: impl Fn(&ResultRow) -> &str,
    ) -> Vec<Vec<f64>> {
        row_labels
            .iter()
            .map(|rl| {
                col_labels
                    .iter()
                    .map(|cl| {
                        self.mean_where(|r| row_of(r) == rl.as_str() && col_of(r) == cl.as_str())
                            .unwrap_or(f64::NAN)
                    })
                    .collect()
            })
            .collect()
    }

    /// Serializes the table to CSV (with header).
    ///
    /// The environment axis is labelled as an `env_mult` column (after
    /// `device`) iff the table is [`env_swept`](Self::env_swept) or some
    /// row carries a non-baseline multiplier; an all-baseline,
    /// never-swept table keeps the historical 11-column layout byte for
    /// byte. Because the flag is sticky through `filtered`/`extend`,
    /// every slice of one sweep serializes with one schema.
    pub fn to_csv(&self) -> String {
        csv_rows(&self.rows, self.env_swept)
    }

    /// Writes [`to_csv`](Self::to_csv) to `path` **crash-safely**: the
    /// content is staged in a sibling temp file and atomically renamed
    /// over the destination (see [`crate::store::write_atomic`]), so a
    /// kill mid-write can never leave a truncated CSV that looks like
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`crate::store::StoreError::Io`] carrying the offending
    /// path if the write or rename fails.
    pub fn write_csv(&self, path: &std::path::Path) -> Result<(), crate::store::StoreError> {
        crate::store::write_atomic(path, self.to_csv().as_bytes())
    }
}

/// Serializes rows to CSV (with header).
///
/// The environment axis is labelled as an `env_mult` column (after
/// `device`) **iff** some row carries a non-baseline multiplier; an
/// all-baseline row set keeps the historical 11-column layout byte for
/// byte (see [`ResultRow::env_multiplier`]). Prefer
/// [`ResultTable::to_csv`], whose schema is additionally sticky under
/// slicing.
pub fn csv_table(rows: &[ResultRow]) -> String {
    csv_rows(rows, false)
}

fn csv_rows(rows: &[ResultRow], env_swept: bool) -> String {
    let with_env = env_swept || rows.iter().any(|r| r.env_multiplier != 1.0);
    let mut out = if with_env {
        String::from(
            "plan_index,framework,building,device,env_mult,attack,variant,\
             targeting,epsilon,phi,mean_error_m,max_error_m\n",
        )
    } else {
        String::from(
            "plan_index,framework,building,device,attack,variant,targeting,\
             epsilon,phi,mean_error_m,max_error_m\n",
        )
    };
    for r in rows {
        let _ = write!(
            out,
            "{},{},{},{},",
            r.plan_index, r.framework, r.building, r.device
        );
        if with_env {
            let _ = write!(out, "{},", r.env_multiplier);
        }
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.4},{:.4}",
            r.attack, r.variant, r.targeting, r.epsilon, r.phi, r.mean_error_m, r.max_error_m
        );
    }
    out
}

/// Renders a labelled matrix as a markdown table (values to 2 decimals).
///
/// # Panics
///
/// Panics if `values` is not `row_labels.len()` x `col_labels.len()`.
pub fn markdown_table(
    corner: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(values.len(), row_labels.len(), "row count mismatch");
    let mut out = String::new();
    let _ = write!(out, "| {corner} |");
    for c in col_labels {
        let _ = write!(out, " {c} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in col_labels {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for (r, label) in row_labels.iter().enumerate() {
        assert_eq!(values[r].len(), col_labels.len(), "col count mismatch");
        let _ = write!(out, "| {label} |");
        for v in &values[r] {
            let _ = write!(out, " {v:.2} |");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a labelled matrix as an ASCII heatmap: each cell shows the value
/// (2 decimals) plus a shade character (` .:-=+*#%@` from low to high,
/// scaled over the matrix range).
///
/// # Panics
///
/// Panics if `values` is not `row_labels.len()` x `col_labels.len()`.
pub fn ascii_heatmap(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(values.len(), row_labels.len(), "row count mismatch");
    const SHADES: &[u8] = b" .:-=+*#%@";
    let flat: Vec<f64> = values.iter().flatten().cloned().collect();
    let lo = flat.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = flat.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let shade = |v: f64| -> char {
        let t = ((v - lo) / span * (SHADES.len() - 1) as f64).round() as usize;
        SHADES[t.min(SHADES.len() - 1)] as char
    };

    let row_w = row_labels.iter().map(String::len).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(out, "{title}  (range {lo:.2} – {hi:.2} m)");
    let _ = write!(out, "{:row_w$} ", "");
    for c in col_labels {
        let _ = write!(out, "{c:>9}");
    }
    let _ = writeln!(out);
    for (r, label) in row_labels.iter().enumerate() {
        assert_eq!(values[r].len(), col_labels.len(), "col count mismatch");
        let _ = write!(out, "{label:>row_w$} ");
        for &v in &values[r] {
            let _ = write!(out, " {v:>6.2} {}", shade(v));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(framework: &str, mean: f64, max: f64) -> ResultRow {
        ResultRow {
            plan_index: 0,
            framework: framework.into(),
            building: "Building 1".into(),
            device: "OP3".into(),
            env_multiplier: 1.0,
            attack: "FGSM".into(),
            variant: "manipulation".into(),
            targeting: "strongest".into(),
            epsilon: 0.1,
            phi: 50.0,
            mean_error_m: mean,
            max_error_m: max,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = csv_table(&[row("CALLOC", 1.5, 4.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("plan_index,framework,"));
        assert!(
            lines[1].starts_with("0,CALLOC,Building 1,OP3,FGSM,manipulation,strongest,0.1,50,1.5")
        );
    }

    #[test]
    fn csv_keeps_historical_layout_for_baseline_environments() {
        // An all-baseline table must serialize without the env_mult column
        // — this is what keeps pre-axis golden CSVs byte-identical.
        let csv = csv_table(&[row("CALLOC", 1.5, 4.0).with_env_multiplier(1.0)]);
        assert!(!csv.contains("env_mult"));
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 11);
    }

    #[test]
    fn env_schema_is_sticky_under_slicing() {
        // A baseline-only slice of an env-swept table must keep the
        // 12-column schema — two CSVs of the same sweep may never
        // disagree on layout.
        let mut t = ResultTable::new();
        t.mark_env_swept();
        t.push(row("CALLOC", 1.5, 4.0));
        t.push(row("CALLOC", 2.5, 6.0).with_env_multiplier(2.0));
        let baseline_slice = t.filtered(|r| r.env_multiplier == 1.0);
        assert!(baseline_slice.env_swept(), "filtered must keep the flag");
        assert!(baseline_slice
            .to_csv()
            .lines()
            .all(|l| l.split(',').count() == 12));
        // extend() propagates the flag into merged tables.
        let mut merged = ResultTable::new();
        merged.extend(baseline_slice);
        assert!(merged.env_swept());
        // A never-swept, all-baseline table keeps the historical layout.
        let mut plain = ResultTable::new();
        plain.push(row("CALLOC", 1.5, 4.0));
        assert!(!plain.env_swept());
        assert_eq!(
            plain.to_csv().lines().next().unwrap().split(',').count(),
            11
        );
    }

    #[test]
    fn csv_labels_a_swept_environment_axis() {
        let rows = [
            row("CALLOC", 1.5, 4.0),
            row("CALLOC", 2.5, 6.0).with_env_multiplier(2.0),
        ];
        let csv = csv_table(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "plan_index,framework,building,device,env_mult,attack,variant,\
             targeting,epsilon,phi,mean_error_m,max_error_m"
        );
        // Every row gains the column, including baseline ones.
        assert!(lines[1].starts_with("0,CALLOC,Building 1,OP3,1,FGSM,"));
        assert!(lines[2].starts_with("0,CALLOC,Building 1,OP3,2,FGSM,"));
        assert!(lines.iter().all(|l| l.split(',').count() == 12));
    }

    #[test]
    fn table_aggregations() {
        let mut t = ResultTable::new();
        t.push(row("CALLOC", 1.0, 2.0));
        t.push(row("CALLOC", 3.0, 8.0));
        t.push(row("WiDeep", 6.0, 12.0));
        assert_eq!(t.mean_where(|r| r.framework == "CALLOC"), Some(2.0));
        assert_eq!(t.max_where(|r| r.framework == "CALLOC"), Some(8.0));
        assert_eq!(t.mean_where(|r| r.framework == "ANVIL"), None);
        assert_eq!(t.for_framework("WiDeep").len(), 1);
    }

    #[test]
    fn aggregations_on_empty_table_are_none() {
        // The documented "no rows at all" path of mean_where/max_where:
        // indistinguishable from a non-matching filter by return value,
        // distinguished via is_empty().
        let t = ResultTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.mean_where(|_| true), None);
        assert_eq!(t.max_where(|_| true), None);
    }

    #[test]
    fn aggregations_on_unmatched_filter_are_none() {
        // The documented "filter matched nothing" path: the table has
        // data, so is_empty() tells the caller the None came from the
        // filter, not from a missing table.
        let mut t = ResultTable::new();
        t.push(row("CALLOC", 1.0, 2.0));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.mean_where(|r| r.framework == "nope"), None);
        assert_eq!(t.max_where(|r| r.epsilon > 100.0), None);
    }

    #[test]
    fn filtered_preserves_plan_indices() {
        let mut t = ResultTable::new();
        for (i, f) in ["CALLOC", "WiDeep", "CALLOC"].iter().enumerate() {
            let mut r = row(f, i as f64, i as f64);
            r.plan_index = i;
            t.push(r);
        }
        let sub = t.filtered(|r| r.framework == "CALLOC");
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.rows()[0].plan_index, 0);
        assert_eq!(sub.rows()[1].plan_index, 2);
    }

    #[test]
    fn pivot_mean_aggregates_by_keys() {
        let mut t = ResultTable::new();
        let mut a = row("CALLOC", 1.0, 2.0);
        a.device = "OP3".into();
        let mut b = row("CALLOC", 3.0, 4.0);
        b.device = "OP3".into();
        let mut c = row("WiDeep", 6.0, 7.0);
        c.device = "BLU".into();
        t.push(a);
        t.push(b);
        t.push(c);
        let rows = vec!["CALLOC".to_string(), "WiDeep".to_string()];
        let cols = vec!["OP3".to_string(), "BLU".to_string()];
        let grid = t.pivot_mean(&rows, &cols, |r| &r.framework, |r| &r.device);
        assert_eq!(grid[0][0], 2.0);
        assert!(grid[0][1].is_nan(), "no CALLOC/BLU rows");
        assert_eq!(grid[1][1], 6.0);
    }

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            "b\\d",
            &["r1".into(), "r2".into()],
            &["c1".into(), "c2".into(), "c3".into()],
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("1.00"));
        assert!(lines[3].contains("6.00"));
    }

    #[test]
    fn heatmap_contains_values_and_shades() {
        let hm = ascii_heatmap(
            "test",
            &["a".into(), "b".into()],
            &["x".into(), "y".into()],
            &[vec![0.0, 1.0], vec![2.0, 10.0]],
        );
        assert!(hm.contains("10.00"));
        assert!(hm.contains('@')); // the max cell gets the darkest shade
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn heatmap_rejects_bad_shape() {
        ascii_heatmap("t", &["a".into()], &["x".into()], &[]);
    }
}
