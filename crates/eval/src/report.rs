//! Plain-text reporting: result tables, CSV, markdown and ASCII heatmaps.

use std::fmt::Write as _;

/// One experiment cell: a (framework, condition) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Framework name (e.g. "CALLOC").
    pub framework: String,
    /// Building name (e.g. "Building 1"), or empty if aggregated.
    pub building: String,
    /// Device acronym, or empty if aggregated.
    pub device: String,
    /// Attack name ("FGSM"/"PGD"/"MIM"), or "none".
    pub attack: String,
    /// Attack strength ε.
    pub epsilon: f64,
    /// Targeted-AP percentage ø.
    pub phi: f64,
    /// Mean localization error in meters.
    pub mean_error_m: f64,
    /// Worst-case localization error in meters.
    pub max_error_m: f64,
}

/// A flat collection of experiment results with export helpers.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    rows: Vec<ResultRow>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ResultTable::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: ResultRow) {
        self.rows.push(row);
    }

    /// Borrow all rows.
    pub fn rows(&self) -> &[ResultRow] {
        &self.rows
    }

    /// Rows of one framework.
    pub fn for_framework(&self, name: &str) -> Vec<&ResultRow> {
        self.rows.iter().filter(|r| r.framework == name).collect()
    }

    /// Mean of `mean_error_m` over the rows matching `pred`; `None` when no
    /// row matches.
    pub fn mean_where(&self, pred: impl Fn(&ResultRow) -> bool) -> Option<f64> {
        let matched: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.mean_error_m)
            .collect();
        if matched.is_empty() {
            None
        } else {
            Some(calloc_tensor::stats::mean(&matched))
        }
    }

    /// Maximum of `max_error_m` over the rows matching `pred`.
    pub fn max_where(&self, pred: impl Fn(&ResultRow) -> bool) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.max_error_m)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Serializes the table to CSV (with header).
    pub fn to_csv(&self) -> String {
        csv_table(&self.rows)
    }
}

/// Serializes rows to CSV (with header).
pub fn csv_table(rows: &[ResultRow]) -> String {
    let mut out =
        String::from("framework,building,device,attack,epsilon,phi,mean_error_m,max_error_m\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.4},{:.4}",
            r.framework,
            r.building,
            r.device,
            r.attack,
            r.epsilon,
            r.phi,
            r.mean_error_m,
            r.max_error_m
        );
    }
    out
}

/// Renders a labelled matrix as a markdown table (values to 2 decimals).
///
/// # Panics
///
/// Panics if `values` is not `row_labels.len()` x `col_labels.len()`.
pub fn markdown_table(
    corner: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(values.len(), row_labels.len(), "row count mismatch");
    let mut out = String::new();
    let _ = write!(out, "| {corner} |");
    for c in col_labels {
        let _ = write!(out, " {c} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in col_labels {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for (r, label) in row_labels.iter().enumerate() {
        assert_eq!(values[r].len(), col_labels.len(), "col count mismatch");
        let _ = write!(out, "| {label} |");
        for v in &values[r] {
            let _ = write!(out, " {v:.2} |");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a labelled matrix as an ASCII heatmap: each cell shows the value
/// (2 decimals) plus a shade character (` .:-=+*#%@` from low to high,
/// scaled over the matrix range).
///
/// # Panics
///
/// Panics if `values` is not `row_labels.len()` x `col_labels.len()`.
pub fn ascii_heatmap(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(values.len(), row_labels.len(), "row count mismatch");
    const SHADES: &[u8] = b" .:-=+*#%@";
    let flat: Vec<f64> = values.iter().flatten().cloned().collect();
    let lo = flat.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = flat.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let shade = |v: f64| -> char {
        let t = ((v - lo) / span * (SHADES.len() - 1) as f64).round() as usize;
        SHADES[t.min(SHADES.len() - 1)] as char
    };

    let row_w = row_labels.iter().map(String::len).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(out, "{title}  (range {lo:.2} – {hi:.2} m)");
    let _ = write!(out, "{:row_w$} ", "");
    for c in col_labels {
        let _ = write!(out, "{c:>9}");
    }
    let _ = writeln!(out);
    for (r, label) in row_labels.iter().enumerate() {
        assert_eq!(values[r].len(), col_labels.len(), "col count mismatch");
        let _ = write!(out, "{label:>row_w$} ");
        for &v in &values[r] {
            let _ = write!(out, " {v:>6.2} {}", shade(v));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(framework: &str, mean: f64, max: f64) -> ResultRow {
        ResultRow {
            framework: framework.into(),
            building: "Building 1".into(),
            device: "OP3".into(),
            attack: "FGSM".into(),
            epsilon: 0.1,
            phi: 50.0,
            mean_error_m: mean,
            max_error_m: max,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = csv_table(&[row("CALLOC", 1.5, 4.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("framework,"));
        assert!(lines[1].starts_with("CALLOC,Building 1,OP3,FGSM,0.1,50,1.5"));
    }

    #[test]
    fn table_aggregations() {
        let mut t = ResultTable::new();
        t.push(row("CALLOC", 1.0, 2.0));
        t.push(row("CALLOC", 3.0, 8.0));
        t.push(row("WiDeep", 6.0, 12.0));
        assert_eq!(t.mean_where(|r| r.framework == "CALLOC"), Some(2.0));
        assert_eq!(t.max_where(|r| r.framework == "CALLOC"), Some(8.0));
        assert_eq!(t.mean_where(|r| r.framework == "ANVIL"), None);
        assert_eq!(t.for_framework("WiDeep").len(), 1);
    }

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            "b\\d",
            &["r1".into(), "r2".into()],
            &["c1".into(), "c2".into(), "c3".into()],
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("1.00"));
        assert!(lines[3].contains("6.00"));
    }

    #[test]
    fn heatmap_contains_values_and_shades() {
        let hm = ascii_heatmap(
            "test",
            &["a".into(), "b".into()],
            &["x".into(), "y".into()],
            &[vec![0.0, 1.0], vec![2.0, 10.0]],
        );
        assert!(hm.contains("10.00"));
        assert!(hm.contains('@')); // the max cell gets the darkest shade
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn heatmap_rejects_bad_shape() {
        ascii_heatmap("t", &["a".into()], &["x".into()], &[]);
    }
}
