//! Localization-error evaluation with optional adversarial attacks.

use calloc_attack::{craft, AttackConfig, MitmAttack};
use calloc_nn::{DifferentiableModel, Localizer};
use calloc_sim::Dataset;
use calloc_tensor::stats::Summary;
use calloc_tensor::Matrix;

/// Result of evaluating one model on one dataset.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Per-fingerprint localization error in meters.
    pub errors_m: Vec<f64>,
    /// Summary statistics (mean = the paper's "mean error", max = the
    /// paper's "worst-case error").
    pub summary: Summary,
    /// Classification accuracy over RP classes (auxiliary metric).
    pub accuracy: f64,
}

/// How the adversarial inputs for a model were produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackedInputs {
    /// No attack was applied.
    Clean,
    /// White-box: gradients taken from the victim itself.
    WhiteBox,
    /// Transfer: gradients taken from a surrogate model because the victim
    /// is not differentiable.
    Transfer,
}

/// Evaluates `model` on `dataset`, optionally under attack.
///
/// Attack crafting uses the **strongest available adversary**: when both
/// the victim's own gradients and a `surrogate` are available, both a
/// white-box and a transfer attack are crafted and the more damaging one
/// (higher mean error) is reported. This is standard robust-evaluation
/// practice — kernel-based victims (GPC/WiDeep) otherwise hide behind
/// gradient masking and look spuriously robust. With neither gradient
/// source available, the attack is skipped and the clean inputs are used.
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn evaluate(
    model: &dyn Localizer,
    dataset: &Dataset,
    attack: Option<&AttackConfig>,
    surrogate: Option<&dyn DifferentiableModel>,
) -> Evaluation {
    // A manipulation-style MITM applies exactly `craft`, so plain-config
    // evaluation is the manipulation special case of the MITM path.
    let mitm = attack.map(|config| MitmAttack::manipulation(config.clone()));
    evaluate_mitm(model, dataset, mitm.as_ref(), surrogate)
}

/// Evaluates `model` on `dataset` under a full MITM attack (manipulation
/// *or* spoofing injection), with the same strongest-available-adversary
/// rule as [`evaluate`]: both the victim's own gradients and the surrogate
/// (when present) craft a candidate batch, and the more damaging one is
/// reported. This is what the sweep engine runs for every attack cell.
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn evaluate_mitm(
    model: &dyn Localizer,
    dataset: &Dataset,
    attack: Option<&MitmAttack>,
    surrogate: Option<&dyn DifferentiableModel>,
) -> Evaluation {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let eval_on = |x: &Matrix| -> Evaluation {
        let predictions = model.predict_classes(x);
        let errors_m = dataset.errors_meters(&predictions);
        let accuracy = calloc_nn::metrics::accuracy(&predictions, &dataset.labels);
        Evaluation {
            summary: Summary::of(&errors_m),
            errors_m,
            accuracy,
        }
    };
    let Some(mitm) = attack else {
        return eval_on(&dataset.x);
    };
    let mut candidates: Vec<Matrix> = Vec::new();
    if let Some(victim) = model.as_differentiable() {
        candidates.push(mitm.apply(victim, &dataset.x, &dataset.labels));
    }
    if let Some(sur) = surrogate {
        candidates.push(mitm.apply(sur, &dataset.x, &dataset.labels));
    }
    if candidates.is_empty() {
        return eval_on(&dataset.x);
    }
    candidates
        .iter()
        .map(eval_on)
        .max_by(|a, b| {
            a.summary
                .mean
                .partial_cmp(&b.summary.mean)
                .expect("finite errors")
        })
        .expect("non-empty candidates")
}

/// Produces the (possibly adversarial) inputs a model would see, along
/// with how they were produced.
///
/// # Panics
///
/// Panics if `dataset` is empty.
pub fn attacked_inputs(
    model: &dyn Localizer,
    dataset: &Dataset,
    attack: Option<&AttackConfig>,
    surrogate: Option<&dyn DifferentiableModel>,
) -> (Matrix, AttackedInputs) {
    assert!(!dataset.is_empty(), "cannot evaluate on an empty dataset");
    let Some(config) = attack else {
        return (dataset.x.clone(), AttackedInputs::Clean);
    };
    if let Some(victim) = model.as_differentiable() {
        (
            craft(victim, &dataset.x, &dataset.labels, config),
            AttackedInputs::WhiteBox,
        )
    } else if let Some(sur) = surrogate {
        (
            craft(sur, &dataset.x, &dataset.labels, config),
            AttackedInputs::Transfer,
        )
    } else {
        (dataset.x.clone(), AttackedInputs::Clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_baselines::{DnnConfig, DnnLocalizer, KnnLocalizer};
    use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};

    fn scenario() -> Scenario {
        let spec = BuildingSpec {
            path_length_m: 15,
            num_aps: 20,
            ..BuildingId::B2.spec()
        };
        let building = Building::generate(spec, 2);
        Scenario::generate(&building, &CollectionConfig::small(), 5)
    }

    #[test]
    fn clean_evaluation_reports_errors() {
        let s = scenario();
        let knn = KnnLocalizer::fit(
            s.train.x.clone(),
            s.train.labels.clone(),
            s.train.num_classes(),
            3,
        );
        let eval = evaluate(&knn, &s.test_per_device[1].1, None, None);
        assert_eq!(eval.errors_m.len(), s.test_per_device[1].1.len());
        assert!(eval.summary.mean < 8.0, "mean error {}", eval.summary.mean);
        assert!(eval.summary.max >= eval.summary.mean);
    }

    #[test]
    fn white_box_attack_used_when_available() {
        let s = scenario();
        let dnn = DnnLocalizer::fit(
            &s.train.x,
            &s.train.labels,
            s.train.num_classes(),
            &DnnConfig {
                hidden: vec![32],
                epochs: 20,
                ..Default::default()
            },
        );
        let (_, how) = attacked_inputs(
            &dnn,
            &s.test_per_device[0].1,
            Some(&AttackConfig::fgsm(0.2, 100.0)),
            None,
        );
        assert_eq!(how, AttackedInputs::WhiteBox);
    }

    #[test]
    fn transfer_attack_used_for_non_differentiable() {
        let s = scenario();
        let knn = KnnLocalizer::fit(
            s.train.x.clone(),
            s.train.labels.clone(),
            s.train.num_classes(),
            3,
        );
        let dnn = DnnLocalizer::fit(
            &s.train.x,
            &s.train.labels,
            s.train.num_classes(),
            &DnnConfig {
                hidden: vec![32],
                epochs: 10,
                ..Default::default()
            },
        );
        let surrogate = dnn.as_differentiable().expect("dnn differentiable");
        let (x, how) = attacked_inputs(
            &knn,
            &s.test_per_device[0].1,
            Some(&AttackConfig::fgsm(0.2, 100.0)),
            Some(surrogate),
        );
        assert_eq!(how, AttackedInputs::Transfer);
        assert_ne!(x, s.test_per_device[0].1.x);
    }

    #[test]
    fn attack_skipped_without_any_gradient_source() {
        let s = scenario();
        let knn = KnnLocalizer::fit(
            s.train.x.clone(),
            s.train.labels.clone(),
            s.train.num_classes(),
            3,
        );
        let (x, how) = attacked_inputs(
            &knn,
            &s.test_per_device[0].1,
            Some(&AttackConfig::fgsm(0.2, 100.0)),
            None,
        );
        assert_eq!(how, AttackedInputs::Clean);
        assert_eq!(x, s.test_per_device[0].1.x);
    }

    #[test]
    fn attack_degrades_dnn() {
        let s = scenario();
        let dnn = DnnLocalizer::fit(
            &s.train.x,
            &s.train.labels,
            s.train.num_classes(),
            &DnnConfig {
                hidden: vec![64],
                epochs: 40,
                ..Default::default()
            },
        );
        let test = &s.test_per_device[1].1;
        let clean = evaluate(&dnn, test, None, None);
        let attacked = evaluate(&dnn, test, Some(&AttackConfig::fgsm(0.3, 100.0)), None);
        assert!(
            attacked.summary.mean > clean.summary.mean,
            "clean {} vs attacked {}",
            clean.summary.mean,
            attacked.summary.mean
        );
    }
}
