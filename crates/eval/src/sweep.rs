//! The parallel attack-sweep evaluation engine.
//!
//! The paper's headline artifacts are robustness tables and heatmaps:
//! every framework evaluated under a grid of attacks. This module turns
//! that grid into a first-class, declarative, parallel subsystem:
//!
//! ```text
//! SweepSpec  --plan-->  SweepPlan  --run-->  ResultTable
//! ```
//!
//! * [`SweepSpec`] declares the axes: attack kinds × ε grid × ø grid ×
//!   targeting strategies × MITM variants × environment drift multipliers,
//!   plus an optional clean baseline cell and the ε calibration factor.
//! * [`SweepSpec::plan`] crosses those axes with the members and datasets
//!   under evaluation and flattens the whole cross-product into one work
//!   list of [`SweepCell`]s, each carrying its **plan index** — its
//!   position in the canonical enumeration order (member-major, then
//!   dataset, then environment level, then attack cell; clean first when
//!   requested, then kind → variant → targeting → ε → ø, each axis in
//!   spec order).
//! * [`SweepPlan::run`] evaluates the cells on
//!   [`calloc_tensor::par::par_chunks`] — the work list is split into
//!   contiguous chunks that idle pool workers reclaim off a shared queue
//!   (a straggling GPC-heavy chunk no longer idles the rest of the pool)
//!   — and merges the resulting rows **in plan-index order**.
//!
//! # The plan-index merge contract
//!
//! Every cell is an independent, deterministic evaluation (its own attack
//! config, its own derived seeds; crafting never mutates shared state),
//! and rows are reassembled by ascending plan index, so a `ResultTable`
//! produced by this engine is **bit-identical for every thread count**
//! (`CALLOC_THREADS` ∈ {1, 2, 4, …}). `tests/determinism.rs` asserts the
//! table equality and `tests/golden_reports.rs` pins exact CSV bytes.
//!
//! # Adding a new attack axis
//!
//! Give the axis a field on [`SweepSpec`] (with every existing
//! constructor defaulting to the axis' singleton so current plans are
//! unchanged), extend [`AttackCell`] and the enumeration loop in
//! [`SweepSpec::attack_cells`] (append the new loop *innermost* to keep
//! existing plan prefixes stable within a cell block), label the axis in
//! [`ResultRow`] so CSV rows stay self-describing, and regenerate the
//! golden CSVs — their diff is the review artifact for the new axis.
//!
//! # Adding an environment axis
//!
//! Environment axes select the **data** a cell evaluates on, not the
//! adversary, so they wrap the clean + attack block instead of nesting
//! inside it (the clean baseline must sweep the environment too — pure
//! environment robustness, Fig. 3-style, is an attack-free workload).
//! The rule mirrors the attack-axis rule: a field on [`SweepSpec`] with a
//! baseline singleton default (`env_multipliers = [1.0]`, keeping every
//! existing plan and golden CSV byte-identical), an index on
//! [`SweepCell`] enumerated **between the dataset axis and the attack
//! block**, an expanded dataset slot list for [`SweepPlan::run`]
//! (dataset-major, environment innermost — see [`run_env_sweep`] for how
//! slots are built from re-collected scenarios), a label on
//! [`ResultRow`] (the `env_mult` CSV column, emitted only when the axis
//! is actually swept), and a pinned golden of its own
//! (`tests/golden/env_sweep.csv`).
//!
//! # Partial failure, sharding & resume
//!
//! [`SweepPlan::run`] is deliberately **all-or-nothing**: a cell that
//! panics unwinds to the fan-out's scope boundary and aborts the whole
//! run with nothing persisted; there is no partial table to reason
//! about. Long or flaky sweeps use the fault-tolerant layer instead:
//!
//! * [`SweepPlan::shard`] restricts a plan to a contiguous plan-index
//!   range (the enumeration is flat and stable, so shards are
//!   independently runnable); [`SweepPlan::shard_ranges`] splits a plan
//!   into `n` near-equal such ranges. Shards keep their parent's
//!   [`full_len`](SweepPlan::full_len) and
//!   [`fingerprint`](SweepPlan::fingerprint), so every shard shares the
//!   parent sweep's store identity.
//! * [`SweepPlan::run_with_store`] executes only the cells **missing**
//!   from a [`crate::store::ResultStore`], records each finished row as
//!   it completes, and checkpoints the store crash-safely on a fixed
//!   cadence. Resume = rerun the same spec against the same store file;
//!   cells finished before a crash are restored from disk, bit-exact.
//! * [`SweepPlan::run_fault_tolerant`] (and the store-backed variant)
//!   wraps every cell in a panic quarantine with a bounded,
//!   deterministic retry budget — see [`crate::fault::ExecSpec`]. A
//!   cell that panics past its budget becomes a recorded
//!   [`crate::fault::CellError`] in the [`crate::fault::RunReport`],
//!   never a lost sweep and never a silently dropped row.
//!
//! The determinism law extends to faults: because rows are keyed and
//! merged by plan index and retries replay identical inputs, a sweep
//! that crashed and resumed, ran as N shards merged
//! ([`crate::store::ResultStore::merge`] — overlap is an error, not
//! last-wins), or retried past injected faults produces a **byte
//! identical CSV** to a clean one-shot run at every `CALLOC_THREADS`.
//! `tests/fault_tolerance.rs` pins each of those paths against the
//! golden CSV, with faults injected via [`crate::fault::FaultPlan`].

use std::ops::Range;
use std::path::Path;
use std::sync::Mutex;

use calloc_attack::{AttackConfig, AttackKind, MitmAttack, MitmVariant, Targeting};
use calloc_nn::{DifferentiableModel, Localizer};
use calloc_sim::{Dataset, Scenario};
use calloc_tensor::par;

use crate::fault::{CellError, ExecSpec, RunReport};
use crate::metrics::evaluate_mitm;
use crate::report::{ResultRow, ResultTable};
use crate::store::{ResultStore, StoreError};

/// Declarative description of an attack sweep: the grid axes crossed with
/// every (member, dataset) pair under evaluation.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Crafting algorithms to sweep (outermost attack axis).
    pub attacks: Vec<AttackKind>,
    /// MITM injection mechanisms to sweep.
    pub variants: Vec<MitmVariant>,
    /// AP targeting strategies to sweep.
    pub targetings: Vec<Targeting>,
    /// ε grid, in **paper units** (reported verbatim in result rows).
    pub epsilons: Vec<f64>,
    /// ø grid (percentage of targeted APs), innermost attack axis.
    pub phis: Vec<f64>,
    /// Environment drift-multiplier grid: each entry evaluates the cell on
    /// a dataset re-collected with the between-phase drift scaled by the
    /// multiplier (`calloc_sim::EnvLevel::uniform`). The singleton `[1.0]`
    /// (every constructor's default) is the baseline environment and
    /// leaves plans and CSVs unchanged; see [`run_env_sweep`] for how the
    /// per-environment datasets are supplied. Must be non-empty —
    /// [`SweepSpec::plan`] rejects an empty axis (it would annihilate
    /// every cell, clean ones included).
    pub env_multipliers: Vec<f64>,
    /// Calibration factor mapping paper ε to normalized attack units
    /// (crafting uses `ε · epsilon_unit`; `calloc-bench` passes its
    /// `EPSILON_UNIT`, direct users of normalized units keep `1.0`).
    pub epsilon_unit: f64,
    /// Whether each (member, dataset) pair gets a clean baseline cell
    /// before its attack cells.
    pub include_clean: bool,
    /// Seed for random targeting and spoofing decoy selection.
    pub seed: u64,
}

impl SweepSpec {
    /// A minimal clean-only sweep (no attack cells at all).
    pub fn clean_only() -> Self {
        SweepSpec {
            attacks: Vec::new(),
            variants: vec![MitmVariant::Manipulation],
            targetings: vec![Targeting::Strongest],
            epsilons: Vec::new(),
            phis: Vec::new(),
            env_multipliers: vec![1.0],
            epsilon_unit: 1.0,
            include_clean: true,
            seed: 0,
        }
    }

    /// The paper's default sweep shape: all three crafting algorithms,
    /// manipulation injection, strongest-AP targeting, over the given ε
    /// and ø grids, with a clean baseline.
    pub fn grid(epsilons: Vec<f64>, phis: Vec<f64>) -> Self {
        SweepSpec {
            attacks: AttackKind::ALL.to_vec(),
            variants: vec![MitmVariant::Manipulation],
            targetings: vec![Targeting::Strongest],
            epsilons,
            phis,
            env_multipliers: vec![1.0],
            epsilon_unit: 1.0,
            include_clean: true,
            seed: 0,
        }
    }

    /// The full threat-model cross-product over the given grids: all
    /// crafting algorithms × both MITM variants × all targeting
    /// strategies, plus the clean baseline.
    pub fn full_grid(epsilons: Vec<f64>, phis: Vec<f64>) -> Self {
        SweepSpec {
            attacks: AttackKind::ALL.to_vec(),
            variants: MitmVariant::ALL.to_vec(),
            targetings: Targeting::ALL.to_vec(),
            epsilons,
            phis,
            env_multipliers: vec![1.0],
            epsilon_unit: 1.0,
            include_clean: true,
            seed: 0,
        }
    }

    /// Returns a copy with the given ε calibration factor.
    pub fn with_epsilon_unit(mut self, unit: f64) -> Self {
        self.epsilon_unit = unit;
        self
    }

    /// Returns a copy with the given targeting/decoy seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given environment drift-multiplier grid.
    pub fn with_env_multipliers(mut self, env_multipliers: Vec<f64>) -> Self {
        self.env_multipliers = env_multipliers;
        self
    }

    /// The attack-axis cells of this spec, in canonical order: the clean
    /// cell first (when requested), then kind → variant → targeting →
    /// ε → ø with each axis iterated in spec order and ø innermost.
    pub fn attack_cells(&self) -> Vec<Option<AttackCell>> {
        let mut cells = Vec::new();
        if self.include_clean {
            cells.push(None);
        }
        for &kind in &self.attacks {
            for &variant in &self.variants {
                for &targeting in &self.targetings {
                    for &epsilon in &self.epsilons {
                        for &phi in &self.phis {
                            cells.push(Some(AttackCell {
                                kind,
                                variant,
                                targeting,
                                epsilon,
                                phi,
                            }));
                        }
                    }
                }
            }
        }
        cells
    }

    /// Crosses the attack cells with members, datasets and environment
    /// levels into a flat, plan-indexed work list.
    ///
    /// `members` are framework names in figure order; `datasets` are
    /// `(building, device)` labels in evaluation order. The enumeration is
    /// member-major, then dataset, then environment level, then the
    /// clean + attack block — with the singleton baseline axis
    /// (`env_multipliers == [1.0]`) it is exactly the historical
    /// member → dataset → attack order. The plan is pure data — models and
    /// fingerprints are only needed at [`SweepPlan::run`] time.
    /// # Panics
    ///
    /// Panics if `env_multipliers` is empty — an empty environment axis
    /// would annihilate every cell (including clean ones); spell the
    /// baseline as `[1.0]`.
    pub fn plan(&self, members: &[String], datasets: &[(String, String)]) -> SweepPlan {
        assert!(
            !self.env_multipliers.is_empty(),
            "env_multipliers must not be empty — use [1.0] for the baseline environment"
        );
        let attack_cells = self.attack_cells();
        let mut cells = Vec::with_capacity(
            members.len() * datasets.len() * self.env_multipliers.len() * attack_cells.len(),
        );
        for member in 0..members.len() {
            for dataset in 0..datasets.len() {
                for env in 0..self.env_multipliers.len() {
                    for attack in &attack_cells {
                        cells.push(SweepCell {
                            plan_index: cells.len(),
                            member,
                            dataset,
                            env,
                            attack: attack.clone(),
                        });
                    }
                }
            }
        }
        let full_cells = cells.len();
        SweepPlan {
            spec: self.clone(),
            members: members.to_vec(),
            datasets: datasets.to_vec(),
            cells,
            full_cells,
        }
    }
}

/// One point on the attack axes of a sweep (everything except the clean
/// baseline, which is represented as `None` in a [`SweepCell`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCell {
    /// Crafting algorithm.
    pub kind: AttackKind,
    /// MITM injection mechanism.
    pub variant: MitmVariant,
    /// AP targeting strategy.
    pub targeting: Targeting,
    /// ε in paper units.
    pub epsilon: f64,
    /// ø, percentage of targeted APs.
    pub phi: f64,
}

impl AttackCell {
    /// Materializes the concrete MITM attack this cell evaluates.
    pub fn to_attack(&self, epsilon_unit: f64, seed: u64) -> MitmAttack {
        let config = AttackConfig::standard(self.kind, self.epsilon * epsilon_unit, self.phi)
            .with_targeting(self.targeting)
            .with_seed(seed);
        MitmAttack {
            config,
            variant: self.variant,
            decoy_seed: seed,
        }
    }
}

/// One unit of sweep work: evaluate one member on one dataset under one
/// attack cell (or clean, when `attack` is `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position of this cell in the plan — the merge key of the engine's
    /// determinism contract, and the `plan_index` of the produced row.
    pub plan_index: usize,
    /// Index into the plan's member list.
    pub member: usize,
    /// Index into the plan's dataset list.
    pub dataset: usize,
    /// Index into the spec's [`SweepSpec::env_multipliers`] grid: which
    /// environment realization of the dataset this cell evaluates.
    pub env: usize,
    /// The attack axes point, or `None` for the clean baseline.
    pub attack: Option<AttackCell>,
}

/// A fully enumerated sweep: the flat work list plus the labels it was
/// planned against.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    spec: SweepSpec,
    members: Vec<String>,
    datasets: Vec<(String, String)>,
    cells: Vec<SweepCell>,
    /// Cell count of the parent (unsharded) plan — shards keep it so
    /// they share the parent's store identity.
    full_cells: usize,
}

impl SweepPlan {
    /// The spec this plan was enumerated from.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Member names, in figure order.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// `(building, device)` labels, in evaluation order.
    pub fn datasets(&self) -> &[(String, String)] {
        &self.datasets
    }

    /// The flat work list, in plan-index order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Number of cells in the plan.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Executes the plan: every cell is evaluated (fanned out on
    /// [`par::par_chunks`]: contiguous chunks of the work list reclaimed
    /// by idle pool workers) and the rows are merged in plan-index order,
    /// so the returned table is bit-identical for every thread count.
    ///
    /// `models` must parallel the member label list. `datasets` holds one
    /// slot per (dataset label, environment level) pair, **dataset-major
    /// with the environment innermost**: slot `d · n_env + e` is the
    /// `d`-th labelled dataset as re-collected under
    /// `spec.env_multipliers[e]`. With the default baseline singleton this
    /// degenerates to exactly one slot per label — the historical
    /// contract. The `surrogate` (usually [`crate::Suite::surrogate`])
    /// transfer-attacks non-differentiable members; pass `None` to skip
    /// attacks on them.
    ///
    /// # Panics
    ///
    /// Panics if `models` / `datasets` lengths disagree with the plan's
    /// label lists (× environment levels), or if any dataset is empty.
    /// A panicking **cell** unwinds to the fan-out boundary and aborts
    /// the whole run — all-or-nothing, nothing partial to reason about;
    /// use [`run_fault_tolerant`](Self::run_fault_tolerant) /
    /// [`run_with_store`](Self::run_with_store) when cells may be lost
    /// or the process may be killed.
    pub fn run(
        &self,
        models: &[&dyn Localizer],
        surrogate: Option<&dyn DifferentiableModel>,
        datasets: &[&Dataset],
    ) -> ResultTable {
        self.check_run_inputs(models, datasets);
        let rows = par::par_chunks(self.cells.len(), 1, |range| {
            range
                .map(|i| self.evaluate_cell(&self.cells[i], models, surrogate, datasets))
                .collect::<Vec<ResultRow>>()
        });
        let mut table = self.empty_table();
        for row in rows.into_iter().flatten() {
            table.push(row);
        }
        table
    }

    /// Validates the `run` input contract shared by every execution
    /// entry point.
    fn check_run_inputs(&self, models: &[&dyn Localizer], datasets: &[&Dataset]) {
        assert_eq!(
            models.len(),
            self.members.len(),
            "model count does not match the planned member list"
        );
        assert_eq!(
            datasets.len(),
            self.datasets.len() * self.spec.env_multipliers.len(),
            "dataset slot count must be one per (label, environment level)"
        );
    }

    /// An empty table with this plan's CSV schema.
    fn empty_table(&self) -> ResultTable {
        let mut table = ResultTable::new();
        // A non-baseline environment axis fixes the CSV schema for the
        // whole table (and, through `filtered`, all its slices), so an
        // env-swept table cannot silently lose its `env_mult` column.
        if self.spec.env_multipliers != [1.0] {
            table.mark_env_swept();
        }
        table
    }

    /// Total cell count of the parent (unsharded) plan: equal to
    /// [`len`](Self::len) for a full plan. A shard keeps its parent's
    /// value, so plan indices always lie in `0..full_len()` and every
    /// shard of one sweep shares the parent's store identity.
    pub fn full_len(&self) -> usize {
        self.full_cells
    }

    /// A stable 64-bit identity of the sweep this plan (or shard)
    /// belongs to: an FNV-1a hash of the spec's axes, the member and
    /// dataset labels, and the parent plan's cell count — everything
    /// that determines what each plan index evaluates. Sharding does not
    /// change it, so a [`crate::store::ResultStore`] opened by any shard
    /// interoperates with every other shard of the same sweep, while a
    /// store from a *different* sweep is rejected up front
    /// ([`crate::store::StoreError::PlanMismatch`]) instead of silently
    /// mixing results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.full_cells as u64);
        h.u64(self.members.len() as u64);
        for m in &self.members {
            h.str(m);
        }
        h.u64(self.datasets.len() as u64);
        for (building, device) in &self.datasets {
            h.str(building);
            h.str(device);
        }
        let s = &self.spec;
        h.u64(s.attacks.len() as u64);
        for kind in &s.attacks {
            h.str(kind.name());
        }
        h.u64(s.variants.len() as u64);
        for v in &s.variants {
            h.str(v.name());
        }
        h.u64(s.targetings.len() as u64);
        for t in &s.targetings {
            h.str(t.name());
        }
        h.u64(s.epsilons.len() as u64);
        for &e in &s.epsilons {
            h.u64(e.to_bits());
        }
        h.u64(s.phis.len() as u64);
        for &p in &s.phis {
            h.u64(p.to_bits());
        }
        h.u64(s.env_multipliers.len() as u64);
        for &m in &s.env_multipliers {
            h.u64(m.to_bits());
        }
        h.u64(s.epsilon_unit.to_bits());
        h.u64(u64::from(s.include_clean));
        h.u64(s.seed);
        h.finish()
    }

    /// Restricts the plan to a contiguous range of cell **positions**
    /// (equal to plan indices on a full plan). The shard keeps its
    /// parent's spec, labels, [`full_len`](Self::full_len) and
    /// [`fingerprint`](Self::fingerprint), and its cells keep their
    /// original plan indices — so shards executed in separate processes
    /// write disjoint record sets that
    /// [merge](crate::store::ResultStore::merge) back bit-identically to
    /// the one-shot run.
    ///
    /// # Panics
    ///
    /// Panics if the range does not lie within `0..len()`.
    pub fn shard(&self, range: Range<usize>) -> SweepPlan {
        assert!(
            range.start <= range.end && range.end <= self.cells.len(),
            "shard range {range:?} out of bounds for a {}-cell plan",
            self.cells.len()
        );
        SweepPlan {
            spec: self.spec.clone(),
            members: self.members.clone(),
            datasets: self.datasets.clone(),
            cells: self.cells[range].to_vec(),
            full_cells: self.full_cells,
        }
    }

    /// Splits `0..len()` into `n` near-equal contiguous ranges (the
    /// first `len % n` ranges get one extra cell), suitable for
    /// [`shard`](Self::shard). Ranges beyond the cell count come back
    /// empty rather than panicking, so `n` can exceed the plan size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn shard_ranges(&self, n: usize) -> Vec<Range<usize>> {
        assert!(n > 0, "cannot split a plan into zero shards");
        let len = self.cells.len();
        let base = len / n;
        let extra = len % n;
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let size = base + usize::from(i < extra);
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }

    /// Opens (or creates) a crash-safe result store for this sweep at
    /// `path` — see [`crate::store::ResultStore::open`].
    pub fn open_store(&self, path: &Path) -> Result<ResultStore, StoreError> {
        ResultStore::open(path, self.full_cells, self.fingerprint())
    }

    /// An empty in-memory result store for this sweep (checkpoints are
    /// no-ops) — useful for shard-and-merge flows that never touch disk.
    pub fn memory_store(&self) -> ResultStore {
        ResultStore::in_memory(self.full_cells, self.fingerprint())
    }

    /// Assembles the result table of this plan's cells from a store, in
    /// ascending plan index. Cells without a recorded row (not yet
    /// executed, or quarantined) are simply absent — re-running the plan
    /// against the same store executes exactly those. For a completed
    /// store this table is bit-identical to what [`run`](Self::run)
    /// returns, so its CSV matches the goldens byte for byte.
    pub fn table_from_store(&self, store: &ResultStore) -> ResultTable {
        let mut table = self.empty_table();
        for cell in &self.cells {
            if let Some(row) = store.get(cell.plan_index) {
                table.push(row.clone());
            }
        }
        table
    }

    /// Executes the plan with per-cell panic quarantine and bounded
    /// deterministic retries, entirely in memory.
    ///
    /// Every cell runs behind a [`par::caught`] /
    /// [`par::par_run_caught`] unwind boundary: a panicking cell is
    /// retried up to [`ExecSpec::retries`] times (replaying identical
    /// inputs — same seed ⇒ same replay) and, if it panics on every
    /// attempt, is recorded as a [`CellError`] in the returned
    /// [`RunReport`] instead of killing the sweep. Successful rows merge
    /// in plan-index order exactly as in [`run`](Self::run), so a report
    /// with no errors carries a bit-identical table.
    ///
    /// Fault injection for tests goes through [`ExecSpec::faults`];
    /// production runs leave it empty.
    ///
    /// # Panics
    ///
    /// Panics on the same input-contract violations as
    /// [`run`](Self::run) (those are caller bugs, not cell faults).
    pub fn run_fault_tolerant(
        &self,
        models: &[&dyn Localizer],
        surrogate: Option<&dyn DifferentiableModel>,
        datasets: &[&Dataset],
        exec: &ExecSpec,
    ) -> RunReport {
        self.check_run_inputs(models, datasets);
        let positions: Vec<usize> = (0..self.cells.len()).collect();
        let (rows, errors, recovered) =
            self.run_quarantined(&positions, models, surrogate, datasets, exec, None);
        let mut table = self.empty_table();
        for row in rows {
            table.push(row);
        }
        RunReport {
            table,
            errors,
            executed: positions.len(),
            recovered,
        }
    }

    /// Executes the cells of this plan (or shard) that are **missing**
    /// from `store`, with the same quarantine/retry semantics as
    /// [`run_fault_tolerant`](Self::run_fault_tolerant), recording each
    /// finished row into the store as it completes and checkpointing
    /// crash-safely every [`ExecSpec::checkpoint_every`] cells plus once
    /// at the end.
    ///
    /// This is the resume primitive: a killed run loses at most the
    /// cells since the last checkpoint, and rerunning the same spec
    /// against the same store executes only what is absent — restored
    /// rows are bit-exact (floats round-trip as raw bits), so the final
    /// table and CSV are byte-identical to a clean one-shot run. The
    /// returned report's table covers **all** of this plan's recorded
    /// cells, restored and fresh alike.
    ///
    /// # Errors
    ///
    /// Fails up front with [`StoreError::PlanMismatch`] if the store
    /// belongs to a different sweep, and with the store's error if a
    /// checkpoint or record write fails (the run aborts once in-flight
    /// cells drain; the store keeps every row recorded before the
    /// failure).
    ///
    /// # Panics
    ///
    /// Panics on the same input-contract violations as
    /// [`run`](Self::run).
    pub fn run_with_store(
        &self,
        models: &[&dyn Localizer],
        surrogate: Option<&dyn DifferentiableModel>,
        datasets: &[&Dataset],
        exec: &ExecSpec,
        store: &mut ResultStore,
    ) -> Result<RunReport, StoreError> {
        self.check_run_inputs(models, datasets);
        store.check_plan(self.full_cells, self.fingerprint())?;
        let missing: Vec<usize> = (0..self.cells.len())
            .filter(|&p| !store.contains(self.cells[p].plan_index))
            .collect();
        let executed = missing.len();
        let sink = StoreSink::new(store, exec.checkpoint_every);
        let (_, errors, recovered) =
            self.run_quarantined(&missing, models, surrogate, datasets, exec, Some(&sink));
        sink.finish()?;
        store.checkpoint()?;
        Ok(RunReport {
            table: self.table_from_store(store),
            errors,
            executed,
            recovered,
        })
    }

    /// Quarantined fan-out over the given cell positions: each position
    /// becomes one pool job whose panics are isolated per slot by
    /// [`par::par_run_caught`]. Returns the successful rows in position
    /// order (= ascending plan index), the quarantined cells, and how
    /// many cells recovered within their retry budget. When a sink is
    /// given, each finished row is also recorded the moment its cell
    /// completes, so checkpoints can cover rows of still-running chunks.
    fn run_quarantined(
        &self,
        positions: &[usize],
        models: &[&dyn Localizer],
        surrogate: Option<&dyn DifferentiableModel>,
        datasets: &[&Dataset],
        exec: &ExecSpec,
        sink: Option<&StoreSink<'_>>,
    ) -> (Vec<ResultRow>, Vec<CellError>, usize) {
        let jobs: Vec<Box<dyn FnOnce() -> (ResultRow, usize) + Send + '_>> = positions
            .iter()
            .map(|&pos| {
                let job: Box<dyn FnOnce() -> (ResultRow, usize) + Send + '_> =
                    Box::new(move || {
                        let attempted = self.attempt_cell(pos, models, surrogate, datasets, exec);
                        if let Some(sink) = sink {
                            sink.record(attempted.0.clone());
                        }
                        attempted
                    });
                job
            })
            .collect();
        let outcomes = par::par_run_caught(jobs);
        let mut rows = Vec::with_capacity(outcomes.len());
        let mut errors = Vec::new();
        let mut recovered = 0;
        for (&pos, outcome) in positions.iter().zip(outcomes) {
            match outcome {
                Ok((row, attempts)) => {
                    if attempts > 1 {
                        recovered += 1;
                    }
                    rows.push(row);
                }
                Err(panic) => errors.push(CellError {
                    plan_index: self.cells[pos].plan_index,
                    attempts: exec.max_attempts(),
                    payload: panic.message().to_string(),
                }),
            }
        }
        (rows, errors, recovered)
    }

    /// Evaluates one cell with its retry budget, returning the row and
    /// the number of attempts consumed. Non-final attempts are caught
    /// *inside* the job ([`par::caught`]); the final attempt runs bare,
    /// so the [`par::par_run_caught`] fan-out boundary is the quarantine
    /// of record for cells that exhaust their budget.
    fn attempt_cell(
        &self,
        position: usize,
        models: &[&dyn Localizer],
        surrogate: Option<&dyn DifferentiableModel>,
        datasets: &[&Dataset],
        exec: &ExecSpec,
    ) -> (ResultRow, usize) {
        let cell = &self.cells[position];
        for attempt in 0..exec.retries {
            let outcome = par::caught(|| {
                exec.faults.maybe_panic(cell.plan_index, attempt);
                self.evaluate_cell(cell, models, surrogate, datasets)
            });
            if let Ok(row) = outcome {
                return (row, attempt + 1);
            }
        }
        exec.faults.maybe_panic(cell.plan_index, exec.retries);
        (
            self.evaluate_cell(cell, models, surrogate, datasets),
            exec.retries + 1,
        )
    }

    /// Evaluates one cell into its result row.
    fn evaluate_cell(
        &self,
        cell: &SweepCell,
        models: &[&dyn Localizer],
        surrogate: Option<&dyn DifferentiableModel>,
        datasets: &[&Dataset],
    ) -> ResultRow {
        let model = models[cell.member];
        let n_env = self.spec.env_multipliers.len();
        let data = datasets[cell.dataset * n_env + cell.env];
        let env_multiplier = self.spec.env_multipliers[cell.env];
        let (building, device) = &self.datasets[cell.dataset];
        let framework = &self.members[cell.member];
        match &cell.attack {
            None => {
                let eval = evaluate_mitm(model, data, None, None);
                ResultRow::clean(
                    cell.plan_index,
                    framework,
                    building,
                    device,
                    eval.summary.mean,
                    eval.summary.max,
                )
                .with_env_multiplier(env_multiplier)
            }
            Some(attack) => {
                let mitm = attack.to_attack(self.spec.epsilon_unit, self.spec.seed);
                let eval = evaluate_mitm(model, data, Some(&mitm), surrogate);
                ResultRow {
                    plan_index: cell.plan_index,
                    framework: framework.clone(),
                    building: building.clone(),
                    device: device.clone(),
                    env_multiplier,
                    attack: attack.kind.name().into(),
                    variant: attack.variant.name().into(),
                    targeting: attack.targeting.name().into(),
                    epsilon: attack.epsilon,
                    phi: attack.phi,
                    mean_error_m: eval.summary.mean,
                    max_error_m: eval.summary.max,
                }
            }
        }
    }
}

/// Shared, lock-guarded funnel from concurrently finishing cells into a
/// result store: records rows the moment they complete and checkpoints
/// on the configured cadence. The first store error latches; further
/// records are dropped and the error surfaces from [`finish`]
/// (the run aborts with it once in-flight cells drain).
///
/// [`finish`]: StoreSink::finish
struct StoreSink<'a> {
    inner: Mutex<SinkInner<'a>>,
}

struct SinkInner<'a> {
    store: &'a mut ResultStore,
    since_checkpoint: usize,
    cadence: usize,
    error: Option<StoreError>,
}

impl<'a> StoreSink<'a> {
    fn new(store: &'a mut ResultStore, cadence: usize) -> Self {
        StoreSink {
            inner: Mutex::new(SinkInner {
                store,
                since_checkpoint: 0,
                cadence,
                error: None,
            }),
        }
    }

    fn record(&self, row: ResultRow) {
        let mut inner = self.inner.lock().expect("store sink lock poisoned");
        if inner.error.is_some() {
            return;
        }
        if let Err(e) = inner.store.insert(row) {
            inner.error = Some(e);
            return;
        }
        inner.since_checkpoint += 1;
        if crate::fault::checkpoint_due(inner.cadence, inner.since_checkpoint) {
            match inner.store.checkpoint() {
                Ok(()) => inner.since_checkpoint = 0,
                Err(e) => inner.error = Some(e),
            }
        }
    }

    fn finish(self) -> Result<(), StoreError> {
        let inner = self.inner.into_inner().expect("store sink lock poisoned");
        match inner.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Minimal FNV-1a accumulator for [`SweepPlan::fingerprint`] and the
/// model-cache keys of [`crate::cache`]. Every field is written length-
/// or tag-prefixed by the caller, so distinct field sequences cannot
/// collide by concatenation.
pub(crate) struct Fnv {
    hash: u64,
}

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.hash
    }
}

/// Plans and runs a sweep in one call: `members` are `(name, model)`
/// pairs, `datasets` are `(building, device, fingerprints)` triples.
///
/// # Panics
///
/// Panics if any dataset is empty.
pub fn run_sweep(
    members: &[(&str, &dyn Localizer)],
    surrogate: Option<&dyn DifferentiableModel>,
    datasets: &[(String, String, &Dataset)],
    spec: &SweepSpec,
) -> ResultTable {
    let names: Vec<String> = members.iter().map(|(n, _)| (*n).into()).collect();
    let labels: Vec<(String, String)> = datasets
        .iter()
        .map(|(b, d, _)| (b.clone(), d.clone()))
        .collect();
    let models: Vec<&dyn Localizer> = members.iter().map(|(_, m)| *m).collect();
    let data: Vec<&Dataset> = datasets.iter().map(|(_, _, d)| *d).collect();
    spec.plan(&names, &labels).run(&models, surrogate, &data)
}

/// Plans and runs an environment-robustness sweep in one call: like
/// [`run_sweep`], but the dataset axis is expanded over
/// `spec.env_multipliers`. `scenarios[e]` must hold the collection
/// protocol re-generated under the `e`-th drift multiplier
/// (`calloc_sim::EnvLevel::uniform(spec.env_multipliers[e])` applied to
/// the same `(building, config, seed)` — a
/// `calloc_sim::ScenarioSpec::single(..).with_environments(..)` grid
/// produces exactly this list); every cell with environment index `e`
/// then evaluates on `scenarios[e]`'s per-device test sets. The dataset
/// labels are `(building, device-acronym)` in collection order, so
/// environment and attack robustness land in one table.
///
/// # Panics
///
/// Panics if `scenarios.len() != spec.env_multipliers.len()`, if the
/// scenarios disagree on their collected device lists, or if any dataset
/// is empty.
pub fn run_env_sweep(
    members: &[(&str, &dyn Localizer)],
    surrogate: Option<&dyn DifferentiableModel>,
    building: &str,
    scenarios: &[&Scenario],
    spec: &SweepSpec,
) -> ResultTable {
    assert_eq!(
        scenarios.len(),
        spec.env_multipliers.len(),
        "one scenario per environment multiplier"
    );
    assert!(
        !scenarios.is_empty(),
        "an environment sweep needs at least one scenario"
    );
    let acronyms = scenarios[0].device_acronyms();
    for s in &scenarios[1..] {
        assert_eq!(
            s.device_acronyms(),
            acronyms,
            "every environment realization must collect the same device list"
        );
    }
    let names: Vec<String> = members.iter().map(|(n, _)| (*n).into()).collect();
    let labels: Vec<(String, String)> = acronyms
        .iter()
        .map(|a| (building.to_string(), (*a).to_string()))
        .collect();
    let models: Vec<&dyn Localizer> = members.iter().map(|(_, m)| *m).collect();
    // Dataset-major, environment-innermost slot layout — the run() contract.
    let mut data: Vec<&Dataset> = Vec::with_capacity(labels.len() * scenarios.len());
    for device in 0..acronyms.len() {
        for scenario in scenarios {
            data.push(&scenario.test_per_device[device].1);
        }
    }
    spec.plan(&names, &labels).run(&models, surrogate, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calloc_baselines::KnnLocalizer;
    use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};

    fn tiny_scenario() -> Scenario {
        let spec = BuildingSpec {
            path_length_m: 10,
            num_aps: 12,
            ..BuildingId::B1.spec()
        };
        let building = Building::generate(spec, 2);
        Scenario::generate(&building, &CollectionConfig::small(), 3)
    }

    fn spec() -> SweepSpec {
        SweepSpec::full_grid(vec![0.1, 0.3], vec![50.0, 100.0])
    }

    #[test]
    fn plan_enumerates_the_full_cross_product() {
        let s = spec();
        let members = vec!["KNN".to_string(), "DNN".to_string()];
        let datasets = vec![
            ("B1".to_string(), "OP3".to_string()),
            ("B1".to_string(), "BLU".to_string()),
        ];
        let plan = s.plan(&members, &datasets);
        // clean + 3 kinds × 2 variants × 3 targetings × 2 ε × 2 ø
        let per_pair = 1 + 3 * 2 * 3 * 2 * 2;
        assert_eq!(plan.len(), 2 * 2 * per_pair);
        for (i, cell) in plan.cells().iter().enumerate() {
            assert_eq!(cell.plan_index, i, "plan index must equal position");
        }
        // Member-major enumeration: the first block is member 0.
        assert!(plan.cells()[..per_pair * 2].iter().all(|c| c.member == 0));
        // Clean cell leads each (member, dataset) block.
        assert!(plan.cells()[0].attack.is_none());
        assert!(plan.cells()[per_pair].attack.is_none());
    }

    #[test]
    fn attack_cells_iterate_phi_innermost() {
        let s = SweepSpec::grid(vec![0.1, 0.2], vec![10.0, 20.0]);
        let cells = s.attack_cells();
        assert!(cells[0].is_none(), "clean first");
        let a = cells[1].as_ref().expect("attack cell");
        let b = cells[2].as_ref().expect("attack cell");
        assert_eq!((a.epsilon, a.phi), (0.1, 10.0));
        assert_eq!((b.epsilon, b.phi), (0.1, 20.0), "ø varies before ε");
    }

    #[test]
    fn run_produces_rows_in_plan_order_with_labels() {
        let scenario = tiny_scenario();
        let train = &scenario.train;
        let knn = KnnLocalizer::fit(
            train.x.clone(),
            train.labels.clone(),
            train.num_classes(),
            3,
        );
        let soft = knn.to_soft(0.05);
        let s = SweepSpec::grid(vec![0.2], vec![100.0]);
        let datasets: Vec<(String, String, &Dataset)> = scenario
            .test_per_device
            .iter()
            .map(|(d, t)| ("B1".to_string(), d.acronym.clone(), t))
            .collect();
        let table = run_sweep(&[("KNN", &knn)], Some(&soft), &datasets, &s);
        assert_eq!(table.len(), datasets.len() * (1 + 3));
        for (i, row) in table.rows().iter().enumerate() {
            assert_eq!(row.plan_index, i, "rows must be merged in plan order");
            assert_eq!(row.framework, "KNN");
            assert!(row.mean_error_m.is_finite() && row.mean_error_m >= 0.0);
            assert!(row.max_error_m >= row.mean_error_m - 1e-12);
        }
        let clean = &table.rows()[0];
        assert_eq!((clean.attack.as_str(), clean.epsilon), ("none", 0.0));
        assert_eq!(clean.variant, "");
        let attacked = &table.rows()[1];
        assert_eq!(attacked.attack, "FGSM");
        assert_eq!(attacked.variant, "manipulation");
        assert_eq!(attacked.targeting, "strongest");
        assert_eq!((attacked.epsilon, attacked.phi), (0.2, 100.0));
    }

    #[test]
    fn epsilon_unit_scales_crafting_but_not_reporting() {
        let cell = AttackCell {
            kind: AttackKind::Fgsm,
            variant: MitmVariant::Manipulation,
            targeting: Targeting::Strongest,
            epsilon: 0.4,
            phi: 50.0,
        };
        let mitm = cell.to_attack(0.25, 7);
        assert!((mitm.config.epsilon - 0.1).abs() < 1e-12);
        assert_eq!(mitm.config.seed, 7);
        assert_eq!(cell.epsilon, 0.4, "rows report paper units");
    }

    #[test]
    fn env_axis_wraps_the_clean_and_attack_block() {
        let s = SweepSpec::grid(vec![0.1], vec![50.0]).with_env_multipliers(vec![1.0, 2.0]);
        let members = vec!["KNN".to_string()];
        let datasets = vec![("B1".to_string(), "OP3".to_string())];
        let plan = s.plan(&members, &datasets);
        // 2 environments × (clean + 3 kinds × 1 × 1 × 1 ε × 1 ø)
        let per_env = 1 + 3;
        assert_eq!(plan.len(), 2 * per_env);
        // Environment wraps the block: a full clean+attack block per level,
        // so the clean baseline is swept across environments too.
        assert!(plan.cells()[..per_env].iter().all(|c| c.env == 0));
        assert!(plan.cells()[per_env..].iter().all(|c| c.env == 1));
        assert!(plan.cells()[0].attack.is_none());
        assert!(plan.cells()[per_env].attack.is_none());
    }

    #[test]
    fn env_sweep_evaluates_each_level_on_its_own_scenario() {
        use calloc_sim::{EnvLevel, ScenarioSpec};

        let bspec = BuildingSpec {
            path_length_m: 10,
            num_aps: 12,
            ..BuildingId::B1.spec()
        };
        let set = ScenarioSpec::single(bspec, 2, CollectionConfig::small(), 3)
            .with_environments(vec![EnvLevel::BASELINE, EnvLevel::uniform(3.0)])
            .generate();
        let baseline = set.scenario(0);
        let knn = KnnLocalizer::fit(
            baseline.train.x.clone(),
            baseline.train.labels.clone(),
            baseline.train.num_classes(),
            3,
        );
        let spec = SweepSpec::clean_only().with_env_multipliers(vec![1.0, 3.0]);
        let scenarios: Vec<&Scenario> = set.scenarios().iter().collect();
        let table = run_env_sweep(&[("KNN", &knn)], None, "B1", &scenarios, &spec);

        // 1 member × 2 devices × 2 environments × 1 clean cell.
        assert_eq!(table.len(), 4);
        for (i, row) in table.rows().iter().enumerate() {
            assert_eq!(row.plan_index, i, "rows merged in plan order");
            assert_eq!(row.attack, "none");
        }
        // Environment is inner to the dataset axis: per device, the
        // baseline row precedes the drift×3 row.
        let envs: Vec<f64> = table.rows().iter().map(|r| r.env_multiplier).collect();
        assert_eq!(envs, vec![1.0, 3.0, 1.0, 3.0]);
        // The CSV labels the swept axis.
        let csv = table.to_csv();
        assert!(csv.lines().next().unwrap().contains("env_mult"));
        // The harsher environment is a genuinely different dataset, and
        // (for a survey-matching KNN) a harder one on average.
        let base_mean = table.mean_where(|r| r.env_multiplier == 1.0).unwrap();
        let harsh_mean = table.mean_where(|r| r.env_multiplier == 3.0).unwrap();
        assert_ne!(base_mean.to_bits(), harsh_mean.to_bits());
        assert!(
            harsh_mean > base_mean * 0.8,
            "drift x3 should not make localization easier: {base_mean} -> {harsh_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "env_multipliers must not be empty")]
    fn plan_rejects_an_empty_environment_axis() {
        let s = SweepSpec::grid(vec![0.1], vec![50.0]).with_env_multipliers(Vec::new());
        s.plan(
            &["KNN".to_string()],
            &[("B1".to_string(), "OP3".to_string())],
        );
    }

    #[test]
    #[should_panic(expected = "one scenario per environment multiplier")]
    fn env_sweep_rejects_scenario_count_mismatch() {
        let scenario = tiny_scenario();
        let knn = KnnLocalizer::fit(
            scenario.train.x.clone(),
            scenario.train.labels.clone(),
            scenario.train.num_classes(),
            3,
        );
        let spec = SweepSpec::clean_only().with_env_multipliers(vec![1.0, 2.0]);
        run_env_sweep(&[("KNN", &knn)], None, "B1", &[&scenario], &spec);
    }

    #[test]
    fn clean_only_spec_has_one_cell_per_pair() {
        let s = SweepSpec::clean_only();
        assert_eq!(s.attack_cells().len(), 1);
        let plan = s.plan(
            &["A".to_string(), "B".to_string()],
            &[("b".to_string(), "d".to_string())],
        );
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    fn toy_plan() -> SweepPlan {
        spec().plan(
            &["KNN".to_string(), "DNN".to_string()],
            &[("B1".to_string(), "OP3".to_string())],
        )
    }

    #[test]
    fn shard_ranges_partition_the_plan() {
        let plan = toy_plan();
        for n in [1, 2, 3, plan.len(), plan.len() + 5] {
            let ranges = plan.shard_ranges(n);
            assert_eq!(ranges.len(), n);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be contiguous");
                next = r.end;
            }
            assert_eq!(next, plan.len(), "ranges must cover the whole plan");
        }
    }

    #[test]
    fn shards_keep_plan_indices_and_identity() {
        let plan = toy_plan();
        let shard = plan.shard(3..7);
        assert_eq!(shard.len(), 4);
        assert_eq!(shard.full_len(), plan.len());
        assert_eq!(shard.fingerprint(), plan.fingerprint());
        assert_eq!(
            shard.cells()[0].plan_index,
            3,
            "shard cells keep their original plan indices"
        );
        assert_eq!(shard.cells(), &plan.cells()[3..7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shard_rejects_an_out_of_range_window() {
        let plan = toy_plan();
        let _ = plan.shard(0..plan.len() + 1);
    }

    #[test]
    fn fingerprint_identifies_the_sweep() {
        let members = vec!["KNN".to_string()];
        let datasets = vec![("B1".to_string(), "OP3".to_string())];
        let a = spec().plan(&members, &datasets);
        let b = spec().with_seed(99).plan(&members, &datasets);
        assert_ne!(a.fingerprint(), b.fingerprint(), "seed is part of identity");
        assert_eq!(
            a.fingerprint(),
            spec().plan(&members, &datasets).fingerprint(),
            "same spec and labels must fingerprint identically"
        );
        let other_device = vec![("B1".to_string(), "BLU".to_string())];
        assert_ne!(
            a.fingerprint(),
            spec().plan(&members, &other_device).fingerprint(),
            "dataset labels are part of identity"
        );
    }

    /// A small but real single-member sweep over the tiny scenario,
    /// shared by the fault-tolerance equivalence tests.
    fn knn_fixture(scenario: &Scenario) -> (SweepPlan, Vec<&Dataset>, KnnLocalizer) {
        let names = vec!["KNN".to_string()];
        let labels: Vec<(String, String)> = scenario
            .test_per_device
            .iter()
            .map(|(d, _)| ("B1".to_string(), d.acronym.clone()))
            .collect();
        let data: Vec<&Dataset> = scenario.test_per_device.iter().map(|(_, t)| t).collect();
        let plan = SweepSpec::grid(vec![0.2], vec![100.0])
            .with_seed(5)
            .plan(&names, &labels);
        let knn = KnnLocalizer::fit(
            scenario.train.x.clone(),
            scenario.train.labels.clone(),
            scenario.train.num_classes(),
            3,
        );
        (plan, data, knn)
    }

    #[test]
    fn fault_tolerant_run_matches_plain_run_bit_for_bit() {
        let scenario = tiny_scenario();
        let (plan, data, knn) = knn_fixture(&scenario);
        let soft = knn.to_soft(0.05);
        let models: Vec<&dyn Localizer> = vec![&knn];
        let plain = plan.run(&models, Some(&soft), &data);
        let report = plan.run_fault_tolerant(&models, Some(&soft), &data, &ExecSpec::default());
        assert!(report.is_complete());
        assert_eq!(report.executed, plan.len());
        assert_eq!(report.recovered, 0);
        assert_eq!(report.table.rows(), plain.rows());
        assert_eq!(report.table.to_csv(), plain.to_csv());
    }

    #[test]
    fn injected_faults_recover_within_the_retry_budget() {
        par::silence_injected_panics();
        let scenario = tiny_scenario();
        let (plan, data, knn) = knn_fixture(&scenario);
        let soft = knn.to_soft(0.05);
        let models: Vec<&dyn Localizer> = vec![&knn];
        let plain = plan.run(&models, Some(&soft), &data);
        let exec = ExecSpec::default()
            .with_retries(2)
            .with_faults(crate::fault::FaultPlan::panic_on(&[0, 3], 2));
        let report = plan.run_fault_tolerant(&models, Some(&soft), &data, &exec);
        assert!(report.is_complete(), "{}", report.summary());
        assert_eq!(
            report.recovered, 2,
            "both faulted cells must retry to success"
        );
        assert_eq!(
            report.table.rows(),
            plain.rows(),
            "retried cells must replay to identical rows"
        );
    }

    #[test]
    fn exhausted_cells_are_quarantined_not_fatal() {
        par::silence_injected_panics();
        let scenario = tiny_scenario();
        let (plan, data, knn) = knn_fixture(&scenario);
        let soft = knn.to_soft(0.05);
        let models: Vec<&dyn Localizer> = vec![&knn];
        let exec = ExecSpec::default()
            .with_retries(1)
            .with_faults(crate::fault::FaultPlan::none().panicking(1, 5));
        let report = plan.run_fault_tolerant(&models, Some(&soft), &data, &exec);
        assert!(!report.is_complete());
        assert_eq!(report.errors.len(), 1);
        let err = &report.errors[0];
        assert_eq!((err.plan_index, err.attempts), (1, 2));
        assert!(err.payload.contains("injected fault"), "{}", err.payload);
        assert_eq!(report.table.len(), plan.len() - 1);
        assert!(
            report.table.rows().iter().all(|r| r.plan_index != 1),
            "the quarantined cell must not contribute a row"
        );
        assert!(
            report.summary().contains("1 quarantined"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn store_backed_run_resumes_only_missing_cells() {
        let scenario = tiny_scenario();
        let (plan, data, knn) = knn_fixture(&scenario);
        let soft = knn.to_soft(0.05);
        let models: Vec<&dyn Localizer> = vec![&knn];
        let plain = plan.run(&models, Some(&soft), &data);

        let mut store = plan.memory_store();
        let first = plan.shard(0..2);
        let report = first
            .run_with_store(
                &models,
                Some(&soft),
                &data,
                &ExecSpec::default(),
                &mut store,
            )
            .expect("shard run");
        assert_eq!(report.executed, 2);
        assert_eq!(store.len(), 2);

        let report = plan
            .run_with_store(
                &models,
                Some(&soft),
                &data,
                &ExecSpec::default(),
                &mut store,
            )
            .expect("resume run");
        assert_eq!(
            report.executed,
            plan.len() - 2,
            "only cells missing from the store may execute"
        );
        assert_eq!(report.table.rows(), plain.rows());
        assert_eq!(report.table.to_csv(), plain.to_csv());

        // A third pass finds nothing to do and restores everything.
        let report = plan
            .run_with_store(
                &models,
                Some(&soft),
                &data,
                &ExecSpec::default(),
                &mut store,
            )
            .expect("no-op run");
        assert_eq!(report.executed, 0);
        assert_eq!(report.table.rows(), plain.rows());
    }

    #[test]
    fn store_backed_run_rejects_a_foreign_store() {
        let scenario = tiny_scenario();
        let (plan, data, knn) = knn_fixture(&scenario);
        let models: Vec<&dyn Localizer> = vec![&knn];
        let mut store = ResultStore::in_memory(plan.full_len(), plan.fingerprint() ^ 1);
        let err = plan
            .run_with_store(&models, None, &data, &ExecSpec::default(), &mut store)
            .unwrap_err();
        assert!(matches!(err, StoreError::PlanMismatch { .. }), "{err}");
    }
}
