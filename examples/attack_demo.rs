//! Attack anatomy: craft FGSM, PGD and MIM man-in-the-middle attacks
//! against an undefended DNN localizer and inspect what the adversary
//! actually changes (perturbation norms, targeted APs, error blow-up).
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use calloc_attack::{craft, select_targets, AttackConfig, AttackKind, MitmAttack, Targeting};
use calloc_baselines::{DnnConfig, DnnLocalizer};
use calloc_nn::Localizer;
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};
use calloc_tensor::stats;

fn main() {
    let spec = BuildingSpec {
        path_length_m: 24,
        num_aps: 40,
        ..BuildingId::B2.spec()
    };
    let building = Building::generate(spec, 3);
    let scenario = Scenario::generate(&building, &CollectionConfig::paper(), 9);
    let train = &scenario.train;
    let victim = DnnLocalizer::fit(
        &train.x,
        &train.labels,
        train.num_classes(),
        &DnnConfig::default(),
    );
    let test = scenario.test_for("OP3").expect("OP3 test set");
    let clean_err = stats::mean(&test.errors_meters(&victim.predict_classes(&test.x)));
    println!("victim: plain DNN, clean mean error {clean_err:.2} m\n");

    // Which APs does a rational adversary target? The strongest ones.
    let targets = select_targets(&test.x, 25.0, Targeting::Strongest, 0);
    println!(
        "ø=25% strongest-AP targeting picks {} of {} APs: {:?}\n",
        targets.len(),
        test.num_aps(),
        &targets[..targets.len().min(10)]
    );

    println!(
        "{:<6} {:>6} {:>6} | {:>10} {:>12}",
        "attack", "eps", "phi", "L_inf", "error [m]"
    );
    for kind in AttackKind::ALL {
        for (eps, phi) in [(0.025, 25.0), (0.025, 100.0), (0.125, 100.0)] {
            let cfg = AttackConfig::standard(kind, eps, phi);
            let model = victim.as_differentiable().expect("DNN is differentiable");
            let adv = craft(model, &test.x, &test.labels, &cfg);
            let linf = adv.sub(&test.x).map(f64::abs).max();
            let err = stats::mean(&test.errors_meters(&victim.predict_classes(&adv)));
            println!(
                "{:<6} {:>6.3} {:>6.0} | {:>10.3} {:>12.2}",
                kind.name(),
                eps,
                phi,
                linf,
                err
            );
        }
    }

    // MITM semantics: manipulation vs spoofing.
    let model = victim.as_differentiable().expect("differentiable");
    let manipulation = MitmAttack::manipulation(AttackConfig::fgsm(0.025, 50.0));
    let spoofing = MitmAttack::spoofing(AttackConfig::fgsm(0.025, 50.0), 13);
    for (name, mitm) in [("manipulation", &manipulation), ("spoofing", &spoofing)] {
        let adv = mitm.apply(model, &test.x, &test.labels);
        let err = stats::mean(&test.errors_meters(&victim.predict_classes(&adv)));
        let linf = adv.sub(&test.x).map(f64::abs).max();
        println!("\nMITM {name:<13} L_inf {linf:.3}  mean error {err:.2} m");
    }
    println!("\nspoofing replaces targeted readings with counterfeit ones, so its");
    println!("perturbation is not ε-bounded around the genuine signal — and it hurts more.");
}
