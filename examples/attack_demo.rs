//! Attack anatomy: craft FGSM, PGD and MIM man-in-the-middle attacks
//! against an undefended DNN localizer and inspect what the adversary
//! actually changes (perturbation norms, targeted APs, error blow-up).
//! The (attack × ε × ø × MITM variant) grid itself runs on the sweep
//! engine (`calloc_eval::sweep`), the same subsystem behind the paper's
//! figures.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use calloc_attack::{craft, select_targets, AttackConfig, AttackKind, MitmVariant, Targeting};
use calloc_baselines::{DnnConfig, DnnLocalizer};
use calloc_eval::{run_env_sweep, run_sweep, Localizer, SweepSpec};
use calloc_sim::{BuildingId, BuildingSpec, CollectionConfig, EnvLevel, ScenarioSpec};
use calloc_tensor::stats;

fn main() {
    let spec = BuildingSpec {
        path_length_m: 24,
        num_aps: 40,
        ..BuildingId::B2.spec()
    };
    // One scenario grid: the baseline environment plus two harsher drift
    // levels for the environment-robustness sweep at the end. Cell 0 is
    // the baseline (the environment axis leaves the survey untouched).
    let env_mults = [1.0, 2.0, 3.0];
    let set = ScenarioSpec::single(spec, 3, CollectionConfig::paper(), 9)
        .with_environments(env_mults.iter().map(|&m| EnvLevel::uniform(m)).collect())
        .generate();
    let scenario = set.scenario(0);
    let train = &scenario.train;
    let victim = DnnLocalizer::fit(
        &train.x,
        &train.labels,
        train.num_classes(),
        &DnnConfig::default(),
    );
    let test = scenario.test_for("OP3").expect("OP3 test set");
    let clean_err = stats::mean(&test.errors_meters(&victim.predict_classes(&test.x)));
    println!("victim: plain DNN, clean mean error {clean_err:.2} m\n");

    // Which APs does a rational adversary target? The strongest ones.
    let targets = select_targets(&test.x, 25.0, Targeting::Strongest, 0);
    println!(
        "ø=25% strongest-AP targeting picks {} of {} APs: {:?}\n",
        targets.len(),
        test.num_aps(),
        &targets[..targets.len().min(10)]
    );

    // Perturbation anatomy: what does each crafting algorithm's L∞ look
    // like at its budget?
    println!(
        "{:<6} {:>6} {:>6} | {:>10}",
        "attack", "eps", "phi", "L_inf"
    );
    for kind in AttackKind::ALL {
        for (eps, phi) in [(0.025, 25.0), (0.025, 100.0), (0.125, 100.0)] {
            let cfg = AttackConfig::standard(kind, eps, phi);
            let model = victim.as_differentiable().expect("DNN is differentiable");
            let adv = craft(model, &test.x, &test.labels, &cfg);
            let linf = adv.sub(&test.x).map(f64::abs).max();
            println!(
                "{:<6} {:>6.3} {:>6.0} | {:>10.3}",
                kind.name(),
                eps,
                phi,
                linf
            );
        }
    }

    // The error impact of the same grid — plus both MITM injection
    // variants — as one declarative sweep. ε here is already in
    // normalized units, so the calibration factor stays 1.
    let mut sweep = SweepSpec::grid(vec![0.025, 0.125], vec![25.0, 100.0]);
    sweep.variants = MitmVariant::ALL.to_vec();
    let datasets = [("B2".to_string(), "OP3".to_string(), test)];
    let members: [(&str, &dyn Localizer); 1] = [("DNN", &victim)];
    let table = run_sweep(&members, None, &datasets, &sweep);

    println!(
        "\nsweep: {} cells (clean + {} kinds x {} variants x {} eps x {} phi)\n",
        table.len(),
        sweep.attacks.len(),
        sweep.variants.len(),
        sweep.epsilons.len(),
        sweep.phis.len()
    );
    println!(
        "{:<6} {:<13} {:>6} {:>6} | {:>10} {:>10}",
        "attack", "variant", "eps", "phi", "mean [m]", "worst [m]"
    );
    for row in table.rows() {
        println!(
            "{:<6} {:<13} {:>6.3} {:>6.0} | {:>10.2} {:>10.2}",
            row.attack, row.variant, row.epsilon, row.phi, row.mean_error_m, row.max_error_m
        );
    }

    let manipulation = table
        .mean_where(|r| r.variant == "manipulation")
        .expect("manipulation rows");
    let spoofing = table
        .mean_where(|r| r.variant == "spoofing")
        .expect("spoofing rows");
    println!("\nmean over the grid — manipulation {manipulation:.2} m, spoofing {spoofing:.2} m");
    println!("spoofing replaces targeted readings with counterfeit ones, so its");
    println!("perturbation is not ε-bounded around the genuine signal — and it hurts more.");

    // Environment × attack composition: the same victim swept over the
    // drift-multiplier axis (each level evaluated on its own re-collected
    // scenario) crossed with a clean cell and one FGSM cell — environment
    // robustness and attack robustness in one table.
    let mut env_spec =
        SweepSpec::grid(vec![0.05], vec![100.0]).with_env_multipliers(env_mults.to_vec());
    env_spec.attacks = vec![AttackKind::Fgsm];
    let scenarios: Vec<_> = set.scenarios().iter().collect();
    let env_table = run_env_sweep(&members, None, "B2", &scenarios, &env_spec);

    println!(
        "\nenvironment robustness (mean error over all devices, {} rows):",
        env_table.len()
    );
    println!(
        "{:<12} {:>10} {:>10}",
        "environment", "clean [m]", "FGSM [m]"
    );
    for &mult in &env_mults {
        let clean = env_table
            .mean_where(|r| r.env_multiplier == mult && r.attack == "none")
            .expect("clean cell per environment");
        let fgsm = env_table
            .mean_where(|r| r.env_multiplier == mult && r.attack == "FGSM")
            .expect("FGSM cell per environment");
        println!(
            "{:<12} {clean:>10.2} {fgsm:>10.2}",
            format!("drift x{mult}")
        );
    }
    println!("\nbetween-phase drift degrades the undefended DNN even with no adversary;");
    println!("the attack compounds it — the composed table separates the two effects.");
}
