//! Train the full framework suite (CALLOC + the four state-of-the-art
//! comparison frameworks + the classical baselines) on one building and
//! rank everyone clean and under attack — a single-building Fig. 6.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use calloc_attack::{AttackConfig, AttackKind};
use calloc_eval::{evaluate, Suite, SuiteProfile};
use calloc_sim::{Building, BuildingId, BuildingSpec, CollectionConfig, Scenario};
use calloc_tensor::stats;

fn main() {
    let spec = BuildingSpec {
        path_length_m: 24,
        num_aps: 40,
        ..BuildingId::B3.spec()
    };
    let building = Building::generate(spec, 17);
    let scenario = Scenario::generate(&building, &CollectionConfig::paper(), 23);

    let mut profile = SuiteProfile::quick();
    profile.include_classical = true;
    profile.include_nc = true;
    let suite = Suite::train(&scenario, &profile);
    println!(
        "trained {} frameworks on {}\n",
        suite.members.len(),
        building.spec().id.name()
    );

    let attack = AttackConfig::standard(AttackKind::Pgd, 0.075, 60.0); // paper ε=0.3, ø=60
    println!(
        "{:<9} {:>10} {:>12} {:>12}",
        "framework", "clean [m]", "PGD [m]", "worst [m]"
    );
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for member in &suite.members {
        let mut clean = Vec::new();
        let mut attacked = Vec::new();
        let mut worst = 0.0f64;
        for (_, test) in &scenario.test_per_device {
            clean.push(
                evaluate(member.model.as_ref(), test, None, None)
                    .summary
                    .mean,
            );
            let e = evaluate(
                member.model.as_ref(),
                test,
                Some(&attack),
                Some(suite.surrogate()),
            );
            attacked.push(e.summary.mean);
            worst = worst.max(e.summary.max);
        }
        rows.push((
            member.name.clone(),
            stats::mean(&clean),
            stats::mean(&attacked),
            worst,
        ));
    }
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    for (name, clean, attacked, worst) in rows {
        println!("{name:<9} {clean:>10.2} {attacked:>12.2} {worst:>12.2}");
    }
    println!("\n(sorted by attacked error; the paper's Fig. 6 ranks CALLOC first)");
}
