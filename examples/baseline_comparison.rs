//! Train the full framework suite (CALLOC + the four state-of-the-art
//! comparison frameworks + the classical baselines) on one building and
//! rank everyone clean and under attack — a single-building Fig. 6,
//! evaluated through the sweep engine.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use calloc_attack::AttackKind;
use calloc_eval::{Suite, SuiteProfile, SweepSpec};
use calloc_sim::{BuildingId, BuildingSpec, CollectionConfig, ScenarioSpec};

fn main() {
    let spec = BuildingSpec {
        path_length_m: 24,
        num_aps: 40,
        ..BuildingId::B3.spec()
    };
    let set = ScenarioSpec::single(spec, 17, CollectionConfig::paper(), 23).generate();
    let scenario = set.scenario(0);

    let mut profile = SuiteProfile::quick();
    profile.include_classical = true;
    profile.include_nc = true;
    let suite = Suite::train(scenario, &profile);
    println!(
        "trained {} frameworks on {}\n",
        suite.members.len(),
        set.building_name(0)
    );

    // One PGD cell (paper ε=0.3, ø=60; ε already in normalized units
    // here) plus the clean baseline, for every member on every device.
    let mut sweep = SweepSpec::grid(vec![0.075], vec![60.0]);
    sweep.attacks = vec![AttackKind::Pgd];
    let datasets = Suite::set_datasets(&set, 0);
    let table = suite.sweep(&datasets, &sweep);

    println!(
        "{:<9} {:>10} {:>12} {:>12}",
        "framework", "clean [m]", "PGD [m]", "worst [m]"
    );
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for member in &suite.members {
        let name = member.name.as_str();
        let clean = table
            .mean_where(|r| r.framework == name && r.attack == "none")
            .expect("clean cell per member");
        let attacked = table
            .mean_where(|r| r.framework == name && r.attack == "PGD")
            .expect("PGD cell per member");
        let worst = table
            .max_where(|r| r.framework == name && r.attack == "PGD")
            .expect("PGD cell per member");
        rows.push((member.name.clone(), clean, attacked, worst));
    }
    rows.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    for (name, clean, attacked, worst) in rows {
        println!("{name:<9} {clean:>10.2} {attacked:>12.2} {worst:>12.2}");
    }
    println!("\n(sorted by attacked error; the paper's Fig. 6 ranks CALLOC first)");
}
