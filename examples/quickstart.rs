//! Quickstart: simulate a building survey, train CALLOC through the
//! adaptive curriculum, and localize heterogeneous-device fingerprints —
//! clean and under an FGSM man-in-the-middle attack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use calloc::{CallocConfig, CallocTrainer, Curriculum, Localizer};
use calloc_attack::{craft, AttackConfig};
use calloc_sim::{BuildingId, BuildingSpec, CollectionConfig, ScenarioSpec};
use calloc_tensor::stats;

fn main() {
    // 1. A (shrunken) paper building and the paper's survey protocol:
    //    5 offline fingerprints per RP with OP3, 1 online fingerprint per
    //    RP per device — declared as a (one-cell) scenario grid.
    let spec = BuildingSpec {
        path_length_m: 30,
        num_aps: 48,
        ..BuildingId::B1.spec()
    };
    let set = ScenarioSpec::single(spec, 7, CollectionConfig::paper(), 42).generate();
    let building = set.building_for(0);
    let scenario = set.scenario(0);
    println!(
        "surveyed {} ({} APs, {} reference points, {} train fingerprints)",
        building.spec().id.name(),
        building.num_aps(),
        building.num_rps(),
        scenario.train.len()
    );

    // 2. Train CALLOC: 6 curriculum lessons of increasing adversarial
    //    difficulty with the adaptive controller watching for divergence.
    let trainer = CallocTrainer::new(CallocConfig {
        embedding_dim: 64,
        attention_dim: 32,
        epochs_per_lesson: 10,
        ..CallocConfig::default()
    })
    .with_curriculum(Curriculum::linear(6, 0.025));
    let outcome = trainer.fit(&scenario.train);
    println!(
        "trained CALLOC: {} parameters ({:.1} kB as f32)",
        outcome.model.parameter_count(),
        outcome.model.size_kb_f32()
    );
    for report in &outcome.lesson_reports {
        println!(
            "  lesson {:>2}: phi {:>5.1}% -> {:>5.1}% effective, {} retries, final loss {:.3}",
            report.lesson.index,
            report.lesson.phi_percent,
            report.effective_phi,
            report.retries,
            report.attempt_losses.last().copied().unwrap_or(f64::NAN)
        );
    }

    // 3. Localize each device's online fingerprints, clean and attacked.
    let attack = AttackConfig::fgsm(0.025, 50.0); // paper ε=0.1, ø=50
    println!("\ndevice   clean err [m]   FGSM err [m]");
    for (device, test) in &scenario.test_per_device {
        let clean_pred = outcome.model.predict_classes(&test.x);
        let clean = stats::mean(&test.errors_meters(&clean_pred));
        let adv = craft(&outcome.model, &test.x, &test.labels, &attack);
        let adv_pred = outcome.model.predict_classes(&adv);
        let attacked = stats::mean(&test.errors_meters(&adv_pred));
        println!("{:<8} {:>13.2} {:>14.2}", device.acronym, clean, attacked);
    }
    println!(
        "\nCALLOC keeps the attacked error close to the clean error — that is the paper's claim."
    );
}
