//! Curriculum ablation (the Fig. 5 experiment at example scale): the same
//! CALLOC architecture trained with and without the adversarial
//! curriculum, evaluated under the three attack methods at several ε.
//!
//! ```text
//! cargo run --release --example curriculum_ablation
//! ```

use calloc::{CallocConfig, CallocTrainer, Curriculum, Localizer};
use calloc_attack::{craft, AttackConfig, AttackKind};
use calloc_sim::{BuildingId, BuildingSpec, CollectionConfig, ScenarioSpec};
use calloc_tensor::stats;

fn main() {
    let spec = BuildingSpec {
        path_length_m: 26,
        num_aps: 44,
        ..BuildingId::B4.spec()
    };
    let set = ScenarioSpec::single(spec, 21, CollectionConfig::paper(), 33).generate();
    let scenario = set.scenario(0);

    let trainer = CallocTrainer::new(CallocConfig {
        embedding_dim: 64,
        attention_dim: 32,
        epochs_per_lesson: 10,
        ..CallocConfig::default()
    })
    .with_curriculum(Curriculum::linear(6, 0.025));
    let with = trainer.fit(&scenario.train).model;
    let without = trainer.fit_no_curriculum(&scenario.train).model;
    println!("trained CALLOC with curriculum and the NC ablation\n");

    println!(
        "{:<6} {:>6} | {:>12} {:>10}",
        "attack", "eps", "CALLOC [m]", "NC [m]"
    );
    for kind in AttackKind::ALL {
        for paper_eps in [0.1, 0.3, 0.5] {
            let eps = paper_eps * 0.25; // ε calibration, see DESIGN.md §4
            let cfg = AttackConfig::standard(kind, eps, 100.0);
            let mut we = Vec::new();
            let mut ne = Vec::new();
            for (_, test) in &scenario.test_per_device {
                let adv_w = craft(&with, &test.x, &test.labels, &cfg);
                we.push(stats::mean(
                    &test.errors_meters(&with.predict_classes(&adv_w)),
                ));
                let adv_n = craft(&without, &test.x, &test.labels, &cfg);
                ne.push(stats::mean(
                    &test.errors_meters(&without.predict_classes(&adv_n)),
                ));
            }
            println!(
                "{:<6} {:>6.1} | {:>12.2} {:>10.2}",
                kind.name(),
                paper_eps,
                stats::mean(&we),
                stats::mean(&ne)
            );
        }
    }
    println!("\n(the curriculum's benefit grows with attack strength; in this simulated");
    println!(" substrate the shared hyperspace-attention architecture is itself robust,");
    println!(" so the gap is smaller than the paper's — see EXPERIMENTS.md)");
}
