//! Device heterogeneity: train on one phone (OP3), localize with six.
//!
//! Compares CALLOC against a plain KNN fingerprint matcher across the
//! Table I device suite — the row-flatness of Fig. 4.
//!
//! ```text
//! cargo run --release --example device_heterogeneity
//! ```

use calloc::{CallocConfig, CallocTrainer, Curriculum, Localizer};
use calloc_baselines::KnnLocalizer;
use calloc_sim::{BuildingId, BuildingSpec, CollectionConfig, ScenarioSpec};
use calloc_tensor::stats;

fn main() {
    let spec = BuildingSpec {
        path_length_m: 30,
        num_aps: 48,
        ..BuildingId::B5.spec()
    };
    let set = ScenarioSpec::single(spec, 11, CollectionConfig::paper(), 5).generate();
    let scenario = set.scenario(0);
    println!("training data comes from OP3 only; testing on all six Table I devices\n");

    let knn = KnnLocalizer::fit(
        scenario.train.x.clone(),
        scenario.train.labels.clone(),
        scenario.train.num_classes(),
        3,
    );
    let calloc_model = CallocTrainer::new(CallocConfig {
        embedding_dim: 64,
        attention_dim: 32,
        epochs_per_lesson: 10,
        ..CallocConfig::default()
    })
    .with_curriculum(Curriculum::linear(6, 0.025))
    .fit(&scenario.train)
    .model;

    println!("{:<8} {:>10} {:>10}", "device", "KNN [m]", "CALLOC [m]");
    let mut knn_errs = Vec::new();
    let mut calloc_errs = Vec::new();
    for (device, test) in &scenario.test_per_device {
        let ke = stats::mean(&test.errors_meters(&knn.predict_classes(&test.x)));
        let ce = stats::mean(&test.errors_meters(&calloc_model.predict_classes(&test.x)));
        println!("{:<8} {:>10.2} {:>10.2}", device.acronym, ke, ce);
        knn_errs.push(ke);
        calloc_errs.push(ce);
    }
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    println!(
        "\ndevice-to-device spread: KNN {:.2} m, CALLOC {:.2} m",
        spread(&knn_errs),
        spread(&calloc_errs)
    );
    println!("(a heterogeneity-resilient model keeps both the errors and the spread small)");
}
