//! Test-runner plumbing: the deterministic per-case RNG, the run
//! configuration and the case-failure error type.

use std::fmt;

/// Configuration for a [`proptest!`](crate::proptest) block, mirroring the
/// fields of `proptest::test_runner::Config` this workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns a configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (carries the failure message).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64-based RNG driving strategy sampling.
///
/// Each test case gets its own stream, keyed by the fully-qualified test
/// name and the case index, so runs are bit-identical across processes and
/// machines and independent of test execution order.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG stream for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        };
        // Burn a few outputs so nearby case indices decorrelate.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Returns the next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 (Vigna); public-domain reference construction.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
