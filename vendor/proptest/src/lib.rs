//! Deterministic mini property-testing library, source-compatible with the
//! subset of [proptest](https://proptest-rs.github.io/proptest/) this
//! workspace uses (see `vendor/README.md` for why it is vendored).
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic.** Every case is drawn from a seed derived by hashing
//!   the test function's name and the case index, so a failing case is
//!   reproduced exactly by re-running the test — no persistence files.
//! * **No shrinking.** A failure reports the case index and message only.
//! * Default case count is 64 (configurable with
//!   [`ProptestConfig::with_cases`] via `#![proptest_config(..)]`).
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! fn add_commutes(a: i64, b: i64) -> bool {
//!     a + b == b + a
//! }
//!
//! proptest! {
//!     // In real tests this fn carries `#[test]`; omitted here so the
//!     // doctest (which has no test harness) can call it directly.
//!     fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
//!         prop_assert!(add_commutes(a, b));
//!     }
//! }
//! addition_commutes();
//! ```

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    //! One-stop imports for writing property tests, mirroring
    //! `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares a block of property tests.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items. Each
/// generated test runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} for `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property-test case unless the condition holds.
///
/// Accepts an optional format message, like `assert!`. Must be used inside
/// a [`proptest!`] body (it `return`s a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: {}",
                    stringify!($cond)
                )),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property-test case unless the two expressions are
/// equal (compared by reference, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{} == {}` ({})\n  left: `{:?}`\n right: `{:?}`",
                            stringify!($left),
                            stringify!($right),
                            format!($($fmt)+),
                            l,
                            r
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current property-test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: `{:?}`",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}
