//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// An inclusive-start, exclusive-end size specification for collection
/// strategies. Built from a `usize` (exact size) or a `Range<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range {r:?}");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Returns a strategy producing `Vec`s whose elements come from `element`
/// and whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
