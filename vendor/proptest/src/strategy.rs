//! The [`Strategy`] trait and the primitive strategies (ranges, [`Just`],
//! [`any`]) plus the [`prop_map`](Strategy::prop_map) combinator.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of random test-case values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike real proptest there is no intermediate value tree and no
/// shrinking: a strategy simply draws a concrete value from the
/// deterministic per-case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for every `v` this one produces.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Returns a strategy producing arbitrary values of `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical "draw any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` (without the strategy-type machinery).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric values spanning a wide dynamic range.
        let mag = rng.next_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty integer range strategy {:?}",
                    self
                );
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as u128).wrapping_add(offset)) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty integer range strategy {:?}",
                    self
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty float range strategy {:?}",
                    self
                );
                let u = rng.next_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

range_strategy_float!(f32, f64);
