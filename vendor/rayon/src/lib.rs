//! Minimal scoped fork-join primitives, source-compatible with the subset
//! of [rayon](https://docs.rs/rayon) this workspace uses (see
//! `vendor/README.md` for why it is vendored).
//!
//! The stand-in is built directly on [`std::thread::scope`]: every
//! [`join`] runs its second operand on a freshly spawned scoped thread and
//! the first operand on the calling thread, then joins. There is no
//! persistent worker pool and no work stealing — callers
//! (`calloc_tensor::par`) are expected to split work into a bounded number
//! of coarse chunks, so the per-call spawn cost is amortized over a large
//! amount of numeric work. Panics from either operand are propagated to
//! the caller, as with real rayon.

use std::panic;
use std::thread;

/// Runs the two closures, potentially in parallel, and returns both
/// results. `oper_a` runs on the calling thread; `oper_b` runs on a scoped
/// worker thread.
///
/// If either closure panics, the panic is propagated to the caller once
/// both operands have stopped running.
///
/// # Example
///
/// ```
/// let (a, b) = rayon::join(|| 2 + 2, || 3 * 3);
/// assert_eq!((a, b), (4, 9));
/// ```
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let handle = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle.join() {
            Ok(rb) => rb,
            Err(payload) => panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Number of threads the machine can run in parallel (the size rayon's
/// default pool would have). Falls back to `1` when the parallelism cannot
/// be queried.
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| "left", || "right");
        assert_eq!((a, b), ("left", "right"));
    }

    #[test]
    fn join_allows_borrowing_the_stack() {
        let data = [1.0f64, 2.0, 3.0, 4.0];
        let (lo, hi) = data.split_at(2);
        let (sa, sb) = join(|| lo.iter().sum::<f64>(), || hi.iter().sum::<f64>());
        assert_eq!(sa + sb, 10.0);
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn join_propagates_worker_panic() {
        let _ = join(|| 1, || panic!("worker boom"));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
