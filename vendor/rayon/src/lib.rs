//! Minimal persistent-pool fork-join primitives, source-compatible with
//! the subset of [rayon](https://docs.rs/rayon) this workspace uses (see
//! `vendor/README.md` for why it is vendored).
//!
//! Like real rayon, the stand-in owns one **global worker pool** that
//! outlives any individual parallel call. Work is submitted through
//! [`scope`] / [`Scope::spawn`] (or the derived [`join`]): spawned jobs go
//! onto a shared FIFO injector queue, parked workers wake and pop jobs in
//! submission order, and a thread waiting for its scope to finish *helps*
//! by draining queued jobs instead of blocking — so a fan-out nested
//! inside a running job makes progress even when every pool worker is
//! busy, and the pool can never deadlock on its own queue.
//!
//! Workers are spawned lazily, the first time a job is queued while no
//! worker is idle, and then stay parked between calls; repeated fork-joins
//! reuse them instead of paying a `std::thread::spawn` per fork the way
//! the old `std::thread::scope`-based stand-in did. Panics from any job
//! are caught, forwarded to the owning scope, and re-thrown from the
//! [`scope`] (or [`join`]) call that spawned the job, as with real rayon.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// A queued unit of work. Jobs are lifetime-erased to `'static` when they
/// are enqueued; the [`scope`] call that spawned a job guarantees every
/// borrow stays live by not returning until the job has completed.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Hard ceiling on the number of pool workers ever spawned — a safety net
/// against runaway nesting, far above any budget `calloc_tensor::par`
/// requests (worst-case demand is roughly thread budget × fan-out depth).
const MAX_WORKERS: usize = 256;

struct PoolState {
    /// Pending jobs, popped front-first — submission (FIFO) order.
    jobs: VecDeque<Job>,
    /// Workers currently parked on [`Pool::signal`].
    idle: usize,
    /// Worker threads spawned so far (they never exit; they park).
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signaled on every job push and every scope-job completion; parked
    /// workers and waiting scope owners share it.
    signal: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            jobs: VecDeque::new(),
            idle: 0,
            spawned: 0,
        }),
        signal: Condvar::new(),
    })
}

/// Pool jobs never unwind (bodies are wrapped in `catch_unwind`), but be
/// robust to poisoning anyway: the queue itself is always consistent.
fn lock_state(p: &Pool) -> MutexGuard<'_, PoolState> {
    p.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop() {
    let p = pool();
    let mut state = lock_state(p);
    loop {
        if let Some(job) = state.jobs.pop_front() {
            drop(state);
            job();
            state = lock_state(p);
        } else {
            state.idle += 1;
            state = p.signal.wait(state).unwrap_or_else(|e| e.into_inner());
            state.idle -= 1;
        }
    }
}

/// Enqueues a job, waking a parked worker — or lazily spawning a new one
/// when none is idle and the pool is below [`MAX_WORKERS`]. If the spawn
/// fails (or the cap is hit) the job still runs: some worker or helping
/// scope owner will pop it.
fn push_job(job: Job) {
    let p = pool();
    let mut state = lock_state(p);
    state.jobs.push_back(job);
    let spawn_worker = state.idle == 0 && state.spawned < MAX_WORKERS;
    if spawn_worker {
        state.spawned += 1;
    }
    p.signal.notify_all();
    drop(state);
    if spawn_worker
        && thread::Builder::new()
            .name("calloc-pool-worker".into())
            .spawn(worker_loop)
            .is_err()
    {
        lock_state(p).spawned -= 1;
    }
}

/// A fork-join scope tied to the stack frame of the [`scope`] call that
/// created it: jobs spawned on it may borrow anything that outlives
/// `'scope`, and [`scope`] does not return until every job has completed.
pub struct Scope<'scope> {
    /// Jobs spawned but not yet completed.
    pending: AtomicUsize,
    /// First panic payload thrown by a job, re-thrown when the scope ends.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Invariant in `'scope`, as in real rayon.
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `body` on the pool. It runs at most once, on whichever
    /// thread pops it first — a parked pool worker or a scope owner
    /// helping while it waits (that is the work-reclaiming path).
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // The scope's address travels to the worker as a plain integer
        // (raw pointers are not `Send`); the job is the only reader and
        // reconstitutes the reference under the safety argument below.
        let scope_addr = std::ptr::from_ref(self) as usize;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: the owning `scope` call waits for `pending` to reach
            // zero before returning, so `self` (and everything `body`
            // borrows, which outlives `'scope`) is alive for the whole
            // execution of this job.
            let scope: &Scope<'scope> = unsafe { &*(scope_addr as *const Scope<'scope>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                let mut slot = scope.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            scope.complete();
        });
        // SAFETY: erase `'scope` to `'static` so the job can sit on the
        // global queue. The owner's `wait_all` keeps every borrow alive
        // until the job has run (see above); the queue never outlives a
        // job whose scope is still waiting.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        push_job(job);
    }

    /// Marks one spawned job as finished. Performed under the pool lock so
    /// a waiting owner cannot check `pending` and park between our
    /// decrement and the wake-up.
    fn complete(&self) {
        let p = pool();
        let state = lock_state(p);
        self.pending.fetch_sub(1, Ordering::SeqCst);
        p.signal.notify_all();
        drop(state);
    }

    /// Blocks until every spawned job has completed — but never idly:
    /// while jobs (from *any* scope) sit in the queue, the owner pops and
    /// runs them. This is what lets nested scopes progress when all
    /// workers are busy and lets idle threads reclaim a straggler's
    /// queued work.
    fn wait_all(&self) {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let p = pool();
        let mut state = lock_state(p);
        loop {
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                job();
                state = lock_state(p);
            } else {
                state = p.signal.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Creates a fork-join scope, runs `op` on the calling thread, waits for
/// every job spawned on the scope to complete (helping to drain the pool
/// queue meanwhile), and returns `op`'s result.
///
/// If `op` or any spawned job panics, the panic is re-thrown here once all
/// jobs have stopped running (`op`'s own panic takes precedence).
///
/// # Example
///
/// ```
/// let mut parts = [0u64; 2];
/// let (lo, hi) = parts.split_at_mut(1);
/// rayon::scope(|s| {
///     s.spawn(|_| lo[0] = (0..500u64).sum());
///     s.spawn(|_| hi[0] = (500..1000u64).sum());
/// });
/// assert_eq!(parts[0] + parts[1], 499_500);
/// ```
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    // Wait even when `op` panicked: spawned jobs may still borrow the
    // enclosing stack frame.
    s.wait_all();
    let _ = &s.marker;
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => {
            let panicked = s.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
            match panicked {
                Some(payload) => panic::resume_unwind(payload),
                None => r,
            }
        }
    }
}

/// Runs the two closures, potentially in parallel, and returns both
/// results. `oper_a` runs on the calling thread; `oper_b` is queued on the
/// pool — and reclaimed by the caller itself if no worker gets to it
/// first, so `join` never waits on an idle queue.
///
/// If either closure panics, the panic is propagated to the caller once
/// both operands have stopped running.
///
/// # Example
///
/// ```
/// let (a, b) = rayon::join(|| 2 + 2, || 3 * 3);
/// assert_eq!((a, b), (4, 9));
/// ```
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(oper_b()));
        oper_a()
    });
    (ra, rb.expect("join: second operand completed"))
}

/// Number of threads the machine can run in parallel (the size rayon's
/// default pool would have). Falls back to `1` when the parallelism cannot
/// be queried.
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| "left", || "right");
        assert_eq!((a, b), ("left", "right"));
    }

    #[test]
    fn join_allows_borrowing_the_stack() {
        let data = [1.0f64, 2.0, 3.0, 4.0];
        let (lo, hi) = data.split_at(2);
        let (sa, sb) = join(|| lo.iter().sum::<f64>(), || hi.iter().sum::<f64>());
        assert_eq!(sa + sb, 10.0);
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn join_propagates_worker_panic() {
        let _ = join(|| 1, || panic!("worker boom"));
    }

    #[test]
    #[should_panic(expected = "caller boom")]
    fn join_propagates_caller_panic_after_worker_finishes() {
        let _ = join(|| panic!("caller boom"), || 7);
    }

    #[test]
    fn scope_runs_every_spawned_job_with_borrows() {
        let mut results = [0usize; 16];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * i);
            }
        });
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn scope_jobs_can_spawn_nested_scopes() {
        let mut totals = [0u64; 4];
        scope(|s| {
            for (i, slot) in totals.iter_mut().enumerate() {
                s.spawn(move |_| {
                    let (a, b) = join(|| (i as u64) + 1, || (i as u64) + 2);
                    *slot = a * 10 + b;
                });
            }
        });
        assert_eq!(totals, [12, 23, 34, 45]);
    }

    #[test]
    #[should_panic(expected = "scope job boom")]
    fn scope_propagates_job_panic() {
        scope(|s| s.spawn(|_| panic!("scope job boom")));
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        // Force at least one worker into existence, then observe that a
        // later fork reuses pool threads instead of the caller only.
        let (_, id_first) = join(|| (), || thread::current().id());
        for _ in 0..8 {
            let (_, _) = join(|| (), || ());
        }
        let caller = thread::current().id();
        // The spawned operand may run on the caller (reclaim path) or a
        // worker; across several forks at least one must hit a worker.
        let mut saw_worker = id_first != caller;
        for _ in 0..32 {
            let (_, id) = join(
                || thread::sleep(std::time::Duration::from_millis(1)),
                || thread::current().id(),
            );
            saw_worker |= id != caller;
        }
        assert!(saw_worker, "no fork ever landed on a pool worker");
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
