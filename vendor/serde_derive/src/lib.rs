//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde stand-in.
//!
//! The companion `serde` crate provides blanket impls of its marker traits,
//! so the derives only need to exist (and accept `#[serde(...)]` helper
//! attributes) — they expand to nothing.

use proc_macro::TokenStream;

/// Derives the (marker) `serde::Serialize` trait. Expands to nothing; the
/// blanket impl in the `serde` stand-in already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (marker) `serde::Deserialize` trait. Expands to nothing; the
/// blanket impl in the `serde` stand-in already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
