//! Marker-trait stand-in for [serde](https://serde.rs) used by this offline
//! workspace.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` (no runtime
//! serialization is exercised yet), so the traits are markers with blanket
//! impls and the derive macros are no-ops. Code written against this crate
//! stays source-compatible with real serde; see `vendor/README.md`.

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type so that derived impls and trait
/// bounds compile exactly as they would against real serde.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Blanket-implemented for every sized type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for serde's `de` module (re-exports [`DeserializeOwned`]).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for serde's `ser` module (re-exports [`Serialize`]).
pub mod ser {
    pub use crate::Serialize;
}
