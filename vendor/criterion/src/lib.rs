//! Minimal wall-clock benchmarking harness, source-compatible with the
//! subset of [criterion](https://bheisler.github.io/criterion.rs/book/)
//! this workspace uses (see `vendor/README.md` for why it is vendored).
//!
//! Measurement model: each `bench_function` first times a single call to
//! size the workload, then runs enough iterations to fill a ~300 ms
//! measurement window (at least 5) and reports the mean and best per-
//! iteration wall time. No statistics, plots or baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark harness handle passed to `criterion_group!` targets.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            window: self.measurement_window,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Per-benchmark timing driver handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    window: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one sample per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Size the workload with one untimed-ish warmup call.
        let probe_start = Instant::now();
        hint::black_box(routine());
        let probe = probe_start.elapsed();

        let target = self.window;
        let iters = if probe.is_zero() {
            1000
        } else {
            (target.as_nanos() / probe.as_nanos().max(1)).clamp(5, 100_000) as usize
        };
        self.samples.reserve(iters);
        for _ in 0..iters {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<40} mean {mean:>12?}   best {best:>12?}   ({} iters)",
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group declared by `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
