//! Shared fixtures for the workspace's integration-test tiers.
//!
//! The golden-report, determinism and fault-tolerance suites all pin the
//! **same** quick-profile pipeline — one building realization, one
//! collection protocol, one trained suite, one sweep spec — so that every
//! tier compares against the same `tests/golden/quick_sweep.csv` bytes.
//! This module is that single source of truth; the test files must not
//! restate the pinned parameters, or the tiers can silently drift apart.
//!
//! Each test *binary* trains its own suite (processes don't share the
//! [`OnceLock`]), but within a binary the suite is trained once and
//! shared across the knob-flipping tests — training is thread-count
//! invariant, so sharing cannot leak state between them.

use std::sync::{Mutex, MutexGuard, OnceLock};

use calloc::CallocConfig;
use calloc_eval::{ModelCache, Suite, SuiteProfile, SweepSpec};
use calloc_sim::{
    collection_identity, Building, BuildingId, BuildingSpec, CollectionConfig, Scenario,
};

pub use calloc_tensor::par::silence_injected_panics;

/// Serializes tests that flip the process-global `par` knobs (thread
/// budget, minimum chunk work): chunk *structure* depends on them, so
/// knob-flipping tests must not interleave.
static KNOB_LOCK: Mutex<()> = Mutex::new(());

/// Acquires the process-global knob lock (poisoning is ignored — a
/// failed test must not wedge the rest of the suite).
pub fn lock_knobs() -> MutexGuard<'static, ()> {
    KNOB_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The pinned building realization shared by the golden tiers: Building
/// 1 shrunk to a 12 m path and 16 APs.
pub fn pinned_building_spec() -> BuildingSpec {
    BuildingSpec {
        path_length_m: 12,
        num_aps: 16,
        ..BuildingId::B1.spec()
    }
}

/// The pinned suite-training profile of the quick tier: fast CALLOC (3
/// lessons, 4 epochs each) plus the classical baselines (KNN, GPC —
/// pinning the Cholesky hot path — and DNN).
pub fn quick_profile() -> SuiteProfile {
    SuiteProfile {
        calloc: CallocConfig {
            epochs_per_lesson: 4,
            ..CallocConfig::fast()
        },
        lessons: 3,
        include_nc: false,
        include_sota: false,
        include_classical: true,
        baseline_epochs: 10,
        train_epsilon: 0.025,
        seed: 4,
    }
}

/// The pinned scenario + trained suite, built once per test binary.
///
/// When `CALLOC_MODEL_CACHE` names a directory, the suite trains through
/// `<dir>/testkit_models.bin` via [`Suite::train_cached`]: the first
/// (cold) binary trains and records every member, later (warm) binaries
/// restore them bit-identically instead of retraining. CI's warm-cache
/// legs run the golden tier cold then warm against one cache dir and
/// assert the CSV bytes are identical both times — without the variable
/// nothing changes and every binary trains from scratch.
pub fn scenario_and_suite() -> &'static (Scenario, Suite) {
    static SUITE: OnceLock<(Scenario, Suite)> = OnceLock::new();
    SUITE.get_or_init(|| {
        let building = Building::generate(pinned_building_spec(), 5);
        let scenario = Scenario::generate(&building, &CollectionConfig::small(), 11);
        let suite = match std::env::var_os("CALLOC_MODEL_CACHE") {
            Some(dir) => {
                let path = std::path::Path::new(&dir).join("testkit_models.bin");
                let mut cache =
                    ModelCache::open(&path).expect("CALLOC_MODEL_CACHE names a writable directory");
                // The exact generation recipe three lines up, restated as
                // the scenario-cell identity the cache keys on.
                let cell =
                    collection_identity(&pinned_building_spec(), 5, &CollectionConfig::small(), 11);
                Suite::train_cached(&scenario, &quick_profile(), &cell, &mut cache)
                    .expect("cached suite training")
            }
            None => Suite::train(&scenario, &quick_profile()),
        };
        (scenario, suite)
    })
}

/// The pinned quick-profile sweep spec: the full threat-model
/// cross-product over a reduced (ε, ø) grid — the spec behind
/// `tests/golden/quick_sweep.csv`.
pub fn quick_sweep_spec() -> SweepSpec {
    SweepSpec::full_grid(vec![0.1, 0.5], vec![50.0, 100.0]).with_seed(9)
}
