//! # calloc-repro
//!
//! Umbrella crate for the CALLOC reproduction workspace: re-exports every
//! member crate so the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`) can reach the whole system through one
//! dependency.
//!
//! See the individual crates for the real APIs:
//!
//! * [`calloc`] — the CALLOC framework (curriculum + hyperspace-attention
//!   model).
//! * [`calloc_sim`] — buildings, devices, propagation, fingerprints.
//! * [`calloc_attack`] — FGSM / PGD / MIM white-box attacks.
//! * [`calloc_baselines`] — KNN, NB, GPC, DNN, AdvLoc, SANGRIA, ANVIL,
//!   WiDeep.
//! * [`calloc_eval`] — metrics, suite trainer, reporting.
//! * [`calloc_serve`] — the online localization service (framed TCP
//!   protocol, micro-batching, deadlines, load shedding).
//! * [`calloc_nn`] / [`calloc_tensor`] — the ML and numeric substrates.

pub mod testkit;

pub use calloc;
pub use calloc_attack;
pub use calloc_baselines;
pub use calloc_eval;
pub use calloc_nn;
pub use calloc_serve;
pub use calloc_sim;
pub use calloc_tensor;
